//! Uniformly-sampled time series.
//!
//! Velocity profiles, queue-length traces and traffic-volume feeds are all
//! functions of time sampled on a fixed grid. [`TimeSeries`] stores the grid
//! spacing once and the samples contiguously, and offers the interpolating
//! accessors the optimizer and the analysis code need.

use crate::error::{Error, Result};
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// A series of `f64` samples on a uniform time grid starting at `t = start`.
///
/// # Examples
///
/// ```
/// use velopt_common::series::TimeSeries;
/// use velopt_common::units::Seconds;
///
/// let ts = TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), vec![0.0, 10.0, 20.0])
///     .unwrap();
/// assert_eq!(ts.sample_at(Seconds::new(0.5)), Some(5.0));
/// assert_eq!(ts.duration(), Seconds::new(2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: Seconds,
    step: Seconds,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates a time series from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `step` is not strictly positive or
    /// `samples` is empty.
    pub fn from_samples(start: Seconds, step: Seconds, samples: Vec<f64>) -> Result<Self> {
        if step.value() <= 0.0 || !step.is_finite() {
            return Err(Error::invalid_input("time series step must be positive"));
        }
        if samples.is_empty() {
            return Err(Error::invalid_input("time series needs at least 1 sample"));
        }
        Ok(Self {
            start,
            step,
            samples,
        })
    }

    /// Samples a function on `[start, start + n*step]` (inclusive endpoints,
    /// `n + 1` samples).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `step` is not positive.
    pub fn sample_fn(
        start: Seconds,
        step: Seconds,
        n: usize,
        mut f: impl FnMut(Seconds) -> f64,
    ) -> Result<Self> {
        if step.value() <= 0.0 {
            return Err(Error::invalid_input("time series step must be positive"));
        }
        let samples = (0..=n)
            .map(|i| f(start + step * i as f64))
            .collect::<Vec<_>>();
        Self::from_samples(start, step, samples)
    }

    /// First sample instant.
    pub fn start(&self) -> Seconds {
        self.start
    }

    /// Grid spacing.
    pub fn step(&self) -> Seconds {
        self.step
    }

    /// Time of the last sample.
    pub fn end(&self) -> Seconds {
        self.start + self.step * (self.samples.len() - 1) as f64
    }

    /// Time covered from the first to the last sample.
    pub fn duration(&self) -> Seconds {
        self.end() - self.start
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty (never true for a constructed series).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn time_of(&self, i: usize) -> Seconds {
        assert!(i < self.samples.len(), "sample index out of bounds");
        self.start + self.step * i as f64
    }

    /// Linearly-interpolated value at time `t`, or `None` outside the domain.
    pub fn sample_at(&self, t: Seconds) -> Option<f64> {
        let rel = (t - self.start).value() / self.step.value();
        if rel < 0.0 || rel > (self.samples.len() - 1) as f64 {
            return None;
        }
        let lo = rel.floor() as usize;
        if lo + 1 >= self.samples.len() {
            return Some(self.samples[self.samples.len() - 1]);
        }
        let frac = rel - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[lo + 1] * frac)
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start + self.step * i as f64, v))
    }

    /// Trapezoidal integral of the series over its whole domain.
    ///
    /// For a velocity profile this is the distance traveled; for an energy
    /// rate it is total energy.
    ///
    /// # Examples
    ///
    /// ```
    /// use velopt_common::series::TimeSeries;
    /// use velopt_common::units::Seconds;
    ///
    /// // Constant 10 m/s for 2 s -> 20 m.
    /// let v = TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), vec![10.0; 3]).unwrap();
    /// assert_eq!(v.integrate(), 20.0);
    /// ```
    pub fn integrate(&self) -> f64 {
        let dt = self.step.value();
        self.samples
            .windows(2)
            .map(|w| 0.5 * (w[0] + w[1]) * dt)
            .sum()
    }

    /// Trapezoidal integral of `f(value)` over the domain.
    pub fn integrate_map(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        let dt = self.step.value();
        self.samples
            .windows(2)
            .map(|w| 0.5 * (f(w[0]) + f(w[1])) * dt)
            .sum()
    }

    /// Element-wise map producing a new series on the same grid.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Self {
        Self {
            start: self.start,
            step: self.step,
            samples: self.samples.iter().copied().map(f).collect(),
        }
    }

    /// Maximum sample value (the series is never empty).
    pub fn max_value(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample value.
    pub fn min_value(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Resamples the series onto a new grid spacing via linear interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `new_step` is not positive.
    pub fn resample(&self, new_step: Seconds) -> Result<Self> {
        if new_step.value() <= 0.0 {
            return Err(Error::invalid_input("resample step must be positive"));
        }
        let n = (self.duration().value() / new_step.value()).floor() as usize;
        let samples = (0..=n)
            .map(|i| {
                let t = self.start + new_step * i as f64;
                self.sample_at(t).expect("resample stays inside the domain")
            })
            .collect();
        Self::from_samples(self.start, new_step, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), vec![0.0, 1.0, 2.0, 3.0])
            .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(TimeSeries::from_samples(Seconds::ZERO, Seconds::ZERO, vec![1.0]).is_err());
        assert!(TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), vec![]).is_err());
        assert!(TimeSeries::from_samples(Seconds::ZERO, Seconds::new(-1.0), vec![1.0]).is_err());
    }

    #[test]
    fn endpoints_and_duration() {
        let ts = ramp();
        assert_eq!(ts.start(), Seconds::ZERO);
        assert_eq!(ts.end(), Seconds::new(3.0));
        assert_eq!(ts.duration(), Seconds::new(3.0));
        assert_eq!(ts.len(), 4);
        assert!(!ts.is_empty());
        assert_eq!(ts.time_of(2), Seconds::new(2.0));
    }

    #[test]
    fn interpolation_inside_and_outside() {
        let ts = ramp();
        assert_eq!(ts.sample_at(Seconds::new(1.5)), Some(1.5));
        assert_eq!(ts.sample_at(Seconds::new(3.0)), Some(3.0));
        assert_eq!(ts.sample_at(Seconds::new(-0.1)), None);
        assert_eq!(ts.sample_at(Seconds::new(3.1)), None);
    }

    #[test]
    fn integral_of_ramp() {
        // Integral of t over [0, 3] = 4.5.
        assert!((ramp().integrate() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn integrate_map_squares() {
        // Trapezoid of t^2 on unit grid: 0.5*(0+1) + 0.5*(1+4) + 0.5*(4+9) = 9.5.
        assert!((ramp().integrate_map(|x| x * x) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn sample_fn_inclusive() {
        let ts = TimeSeries::sample_fn(Seconds::ZERO, Seconds::new(0.5), 4, |t| t.value()).unwrap();
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.end(), Seconds::new(2.0));
    }

    #[test]
    fn map_and_extrema() {
        let ts = ramp().map(|x| -x);
        assert_eq!(ts.max_value(), 0.0);
        assert_eq!(ts.min_value(), -3.0);
    }

    #[test]
    fn resample_halves_grid() {
        let ts = ramp().resample(Seconds::new(0.5)).unwrap();
        assert_eq!(ts.len(), 7);
        assert_eq!(ts.sample_at(Seconds::new(2.5)), Some(2.5));
        assert!(ramp().resample(Seconds::ZERO).is_err());
    }

    #[test]
    fn iter_yields_times() {
        let ts = ramp();
        let pts: Vec<_> = ts.iter().collect();
        assert_eq!(pts[3], (Seconds::new(3.0), 3.0));
    }

    #[test]
    fn nonzero_start() {
        let ts = TimeSeries::from_samples(Seconds::new(10.0), Seconds::new(2.0), vec![5.0, 7.0])
            .unwrap();
        assert_eq!(ts.sample_at(Seconds::new(11.0)), Some(6.0));
        assert_eq!(ts.sample_at(Seconds::new(9.9)), None);
        assert_eq!(ts.end(), Seconds::new(12.0));
    }
}
