//! Property-based tests for the traffic substrate.

use proptest::prelude::*;
use velopt_traffic::dataset::{read_csv, write_csv};
use velopt_traffic::{HourlyVolume, VolumeGenerator, HOURS_PER_WEEK};

proptest! {
    /// Generated feeds are always non-negative, finite, and exactly
    /// `weeks * 168` hours long, for any seed and noise level.
    #[test]
    fn generated_feeds_are_wellformed(
        seed in any::<u64>(),
        weeks in 1usize..5,
        noise in 0.0f64..0.5,
    ) {
        let feed = VolumeGenerator::us25_station(seed)
            .noise_fraction(noise)
            .generate_weeks(weeks)
            .unwrap();
        prop_assert_eq!(feed.len(), weeks * HOURS_PER_WEEK);
        prop_assert!(feed.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    /// Weekday commuter peaks survive any reasonable noise level on
    /// average: the 17:00 mean across weekdays dominates the 03:00 mean.
    #[test]
    fn peaks_survive_noise(seed in any::<u64>(), noise in 0.0f64..0.3) {
        let feed = VolumeGenerator::us25_station(seed)
            .noise_fraction(noise)
            .generate_weeks(4)
            .unwrap();
        let mut peak = 0.0;
        let mut night = 0.0;
        let mut n = 0.0;
        for day in 0..28 {
            if day % 7 >= 5 {
                continue; // weekends excluded
            }
            peak += feed.at(day, 17).unwrap();
            night += feed.at(day, 3).unwrap();
            n += 1.0;
        }
        prop_assert!(peak / n > 2.0 * night / n);
    }

    /// CSV round trip is lossless for arbitrary valid feeds.
    #[test]
    fn csv_round_trip(samples in prop::collection::vec(0.0f64..2000.0, 1..200)) {
        let feed = HourlyVolume::new(samples).unwrap();
        let mut buf = Vec::new();
        write_csv(&feed, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, feed);
    }

    /// Calendar helpers are consistent with each other.
    #[test]
    fn calendar_helpers_consistent(hour in 0usize..100_000) {
        let dow = HourlyVolume::day_of_week(hour);
        let hod = HourlyVolume::hour_of_day(hour);
        prop_assert!(dow < 7);
        prop_assert!(hod < 24);
        // Reconstructing the hour modulo a week agrees.
        let week_hour = hour % HOURS_PER_WEEK;
        prop_assert_eq!(week_hour, dow * 24 + hod);
    }

    /// Splitting and re-concatenating a feed is the identity.
    #[test]
    fn split_concat_identity(weeks in 2usize..6, cut in 1usize..5) {
        prop_assume!(cut < weeks);
        let feed = VolumeGenerator::us25_station(9).generate_weeks(weeks).unwrap();
        let (a, b) = feed.split_at_week(cut).unwrap();
        let mut joined = a.samples().to_vec();
        joined.extend_from_slice(b.samples());
        prop_assert_eq!(joined, feed.samples().to_vec());
    }
}
