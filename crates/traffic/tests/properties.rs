//! Property-based tests for the traffic substrate.

use proptest::prelude::*;
use velopt_common::rng::{shuffle, SplitMix64};
use velopt_traffic::dataset::{read_csv, write_csv};
use velopt_traffic::nn::{Activation, Dense, Network, SgdConfig};
use velopt_traffic::{HourlyVolume, VolumeGenerator, HOURS_PER_WEEK};

proptest! {
    /// Generated feeds are always non-negative, finite, and exactly
    /// `weeks * 168` hours long, for any seed and noise level.
    #[test]
    fn generated_feeds_are_wellformed(
        seed in any::<u64>(),
        weeks in 1usize..5,
        noise in 0.0f64..0.5,
    ) {
        let feed = VolumeGenerator::us25_station(seed)
            .noise_fraction(noise)
            .generate_weeks(weeks)
            .unwrap();
        prop_assert_eq!(feed.len(), weeks * HOURS_PER_WEEK);
        prop_assert!(feed.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    /// Weekday commuter peaks survive any reasonable noise level on
    /// average: the 17:00 mean across weekdays dominates the 03:00 mean.
    #[test]
    fn peaks_survive_noise(seed in any::<u64>(), noise in 0.0f64..0.3) {
        let feed = VolumeGenerator::us25_station(seed)
            .noise_fraction(noise)
            .generate_weeks(4)
            .unwrap();
        let mut peak = 0.0;
        let mut night = 0.0;
        let mut n = 0.0;
        for day in 0..28 {
            if day % 7 >= 5 {
                continue; // weekends excluded
            }
            peak += feed.at(day, 17).unwrap();
            night += feed.at(day, 3).unwrap();
            n += 1.0;
        }
        prop_assert!(peak / n > 2.0 * night / n);
    }

    /// CSV round trip is lossless for arbitrary valid feeds.
    #[test]
    fn csv_round_trip(samples in prop::collection::vec(0.0f64..2000.0, 1..200)) {
        let feed = HourlyVolume::new(samples).unwrap();
        let mut buf = Vec::new();
        write_csv(&feed, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, feed);
    }

    /// Calendar helpers are consistent with each other.
    #[test]
    fn calendar_helpers_consistent(hour in 0usize..100_000) {
        let dow = HourlyVolume::day_of_week(hour);
        let hod = HourlyVolume::hour_of_day(hour);
        prop_assert!(dow < 7);
        prop_assert!(hod < 24);
        // Reconstructing the hour modulo a week agrees.
        let week_hour = hour % HOURS_PER_WEEK;
        prop_assert_eq!(week_hour, dow * 24 + hod);
    }

    /// Splitting and re-concatenating a feed is the identity.
    #[test]
    fn split_concat_identity(weeks in 2usize..6, cut in 1usize..5) {
        prop_assume!(cut < weeks);
        let feed = VolumeGenerator::us25_station(9).generate_weeks(weeks).unwrap();
        let (a, b) = feed.split_at_week(cut).unwrap();
        let mut joined = a.samples().to_vec();
        joined.extend_from_slice(b.samples());
        prop_assert_eq!(joined, feed.samples().to_vec());
    }
}

/// Builds a sigmoid stack with a linear head from a seeded RNG, so two
/// calls with the same arguments produce bit-identical weights.
fn build_net(in_dim: usize, hidden: &[usize], out_dim: usize, seed: u64) -> Network {
    let mut rng = SplitMix64::new(seed);
    let mut layers = Vec::new();
    let mut prev = in_dim;
    for &h in hidden {
        layers.push(Dense::random(prev, h, Activation::Sigmoid, &mut rng));
        prev = h;
    }
    layers.push(Dense::random(prev, out_dim, Activation::Linear, &mut rng));
    Network::new(layers)
}

fn random_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.uniform(-2.0, 2.0)).collect())
        .collect()
}

fn weight_bits(net: &Network) -> Vec<u64> {
    net.layers()
        .iter()
        .flat_map(|l| l.weights().iter().chain(l.biases()).map(|v| v.to_bits()))
        .collect()
}

/// A deliberately naive per-sample SGD trainer mirroring the historical
/// scalar path: forward one sample, backprop, update immediately. The
/// mini-batch engine at `batch_size: 1` must reproduce it bit for bit.
struct RefLayer {
    w: Vec<f64>,
    b: Vec<f64>,
    vw: Vec<f64>,
    vb: Vec<f64>,
    act: Activation,
    in_dim: usize,
    out_dim: usize,
}

fn reference_layers(net: &Network) -> Vec<RefLayer> {
    net.layers()
        .iter()
        .map(|l| RefLayer {
            w: l.weights().to_vec(),
            b: l.biases().to_vec(),
            vw: vec![0.0; l.weights().len()],
            vb: vec![0.0; l.biases().len()],
            act: l.activation(),
            in_dim: l.in_dim(),
            out_dim: l.out_dim(),
        })
        .collect()
}

// Index-style loops are the point here: the reference spells out the
// scalar accumulation order the kernels are defined against.
#[allow(clippy::needless_range_loop)]
fn reference_train(
    layers: &mut [RefLayer],
    inputs: &[&[f64]],
    targets: &[&[f64]],
    cfg: &SgdConfig,
    rng: &mut SplitMix64,
) {
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    for _ in 0..cfg.epochs {
        shuffle(&mut order, rng);
        for &idx in order.iter() {
            // Forward, keeping every layer boundary's activations.
            let mut acts: Vec<Vec<f64>> = vec![inputs[idx].to_vec()];
            for layer in layers.iter() {
                let x = acts.last().unwrap();
                let mut y = vec![0.0; layer.out_dim];
                for (o, yo) in y.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for k in 0..layer.in_dim {
                        s += layer.w[o * layer.in_dim + k] * x[k];
                    }
                    *yo = layer.act.apply(s + layer.b[o]);
                }
                acts.push(y);
            }
            // Backprop: output delta, then hidden deltas through the
            // pre-update weights.
            let depth = layers.len();
            let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); depth];
            let out_act = layers[depth - 1].act;
            deltas[depth - 1] = acts[depth]
                .iter()
                .zip(targets[idx])
                .map(|(&y, &t)| (y - t) * out_act.derivative_from_output(y))
                .collect();
            for l in (0..depth - 1).rev() {
                let next = &layers[l + 1];
                let mut d = vec![0.0; layers[l].out_dim];
                for (i, di) in d.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for o in 0..next.out_dim {
                        s += next.w[o * next.in_dim + i] * deltas[l + 1][o];
                    }
                    *di = s * layers[l].act.derivative_from_output(acts[l + 1][i]);
                }
                deltas[l] = d;
            }
            // Momentum update, gradient "averaged" over this batch of one.
            for (l, layer) in layers.iter_mut().enumerate() {
                for o in 0..layer.out_dim {
                    for k in 0..layer.in_dim {
                        let g = deltas[l][o] * acts[l][k] / 1.0;
                        let wi = o * layer.in_dim + k;
                        layer.vw[wi] = cfg.momentum * layer.vw[wi] - cfg.learning_rate * g;
                        layer.w[wi] += layer.vw[wi];
                    }
                    let g = deltas[l][o] / 1.0;
                    layer.vb[o] = cfg.momentum * layer.vb[o] - cfg.learning_rate * g;
                    layer.b[o] += layer.vb[o];
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked batch forward is bit-identical to the scalar per-row
    /// forward for arbitrary stack shapes and batch sizes (including 1
    /// and sizes that leave a ragged final row tile).
    #[test]
    fn forward_batch_matches_scalar_forward_bitwise(
        seed in any::<u64>(),
        in_dim in 1usize..8,
        hidden in prop::collection::vec(1usize..8, 0..3),
        out_dim in 1usize..5,
        batch in 1usize..20,
    ) {
        let net = build_net(in_dim, &hidden, out_dim, seed);
        let rows = random_rows(batch, in_dim, seed ^ 0xABCD);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let batched = net.forward_batch(&refs);
        for (b, row) in refs.iter().enumerate() {
            let scalar = net.forward(row);
            prop_assert_eq!(batched[b].len(), scalar.len());
            for (o, (&bv, &sv)) in batched[b].iter().zip(&scalar).enumerate() {
                prop_assert_eq!(bv.to_bits(), sv.to_bits(), "row {} output {}", b, o);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Trained weights are bit-identical for 1, 2, and 4 worker threads:
    /// the gradient-chunk partition and reduction order are fixed, so
    /// threads only decide who computes which chunk.
    #[test]
    fn trained_weights_are_thread_invariant(
        seed in any::<u64>(),
        in_dim in 1usize..6,
        hidden in prop::collection::vec(1usize..6, 1..3),
        n in 3usize..25,
        batch_size in 1usize..12,
    ) {
        let inputs = random_rows(n, in_dim, seed ^ 0x1111);
        let targets = random_rows(n, 1, seed ^ 0x2222);
        let input_refs: Vec<&[f64]> = inputs.iter().map(|r| r.as_slice()).collect();
        let target_refs: Vec<&[f64]> = targets.iter().map(|r| r.as_slice()).collect();
        let mut bits = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut net = build_net(in_dim, &hidden, 1, seed);
            let cfg = SgdConfig {
                epochs: 3,
                learning_rate: 0.05,
                momentum: 0.9,
                batch_size,
                threads,
            };
            let mut rng = SplitMix64::new(seed ^ 0x3333);
            net.train(&input_refs, &target_refs, &cfg, &mut rng).unwrap();
            bits.push(weight_bits(&net));
        }
        prop_assert_eq!(&bits[0], &bits[1], "1 vs 2 threads");
        prop_assert_eq!(&bits[0], &bits[2], "1 vs 4 threads");
    }

    /// `batch_size: 1` reproduces naive per-sample SGD bit for bit —
    /// the historical scalar trainer is a special case of the batch
    /// engine, not an approximation.
    #[test]
    fn batch_size_one_matches_per_sample_reference(
        seed in any::<u64>(),
        in_dim in 1usize..6,
        hidden in prop::collection::vec(1usize..6, 1..3),
        n in 2usize..16,
    ) {
        let inputs = random_rows(n, in_dim, seed ^ 0x4444);
        let targets = random_rows(n, 1, seed ^ 0x5555);
        let input_refs: Vec<&[f64]> = inputs.iter().map(|r| r.as_slice()).collect();
        let target_refs: Vec<&[f64]> = targets.iter().map(|r| r.as_slice()).collect();
        let cfg = SgdConfig {
            epochs: 4,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 1,
            threads: 1,
        };

        let mut net = build_net(in_dim, &hidden, 1, seed);
        let mut reference = reference_layers(&net);
        let mut rng = SplitMix64::new(seed ^ 0x6666);
        reference_train(&mut reference, &input_refs, &target_refs, &cfg, &mut rng);

        let mut rng = SplitMix64::new(seed ^ 0x6666);
        net.train(&input_refs, &target_refs, &cfg, &mut rng).unwrap();

        for (layer, refl) in net.layers().iter().zip(&reference) {
            for (i, (&w, &rw)) in layer.weights().iter().zip(&refl.w).enumerate() {
                prop_assert_eq!(w.to_bits(), rw.to_bits(), "weight {}", i);
            }
            for (o, (&b, &rb)) in layer.biases().iter().zip(&refl.b).enumerate() {
                prop_assert_eq!(b.to_bits(), rb.to_bits(), "bias {}", o);
            }
        }
    }
}
