//! Traffic-volume substrate and the stacked-autoencoder (SAE) predictor.
//!
//! The paper predicts the **vehicle arrival rate** `V_in` at a traffic light
//! with the deep-learning SAE traffic-volume model of Huang et al. \[10\],
//! trained on three months of hourly loop-detector data from the South
//! Carolina DoT and tested on one week (§II-B-1, §III-A-2, Fig. 4). That
//! feed is not publicly archivable, so this crate provides:
//!
//! * [`VolumeGenerator`] — a synthetic hourly volume feed with the same
//!   statistical structure the SAE exploits: weekday AM/PM commuter peaks,
//!   weekend single-hump profiles, multiplicative noise and occasional
//!   incident dips (the substitution is documented in `DESIGN.md`),
//! * [`nn`] — a small, from-scratch dense neural network (sigmoid/linear
//!   layers, mini-batch SGD with momentum) running on the cache-blocked
//!   [`gemm`] kernels, with deterministic data-parallel training
//!   ([`nn::SgdConfig::batch_size`] / [`nn::SgdConfig::threads`]) and
//!   reusable scratch ([`TrainArena`], [`BatchScratch`]),
//! * [`Sae`] — greedy layer-wise autoencoder pretraining followed by
//!   supervised fine-tuning, exactly the SAE recipe of \[10\], with
//!   [`TrainMetrics`] describing the work done,
//! * [`SaePredictor`] — windowed lag features + time-of-day/day-of-week
//!   encodings over an [`HourlyVolume`] feed, with per-day MRE/RMSE
//!   evaluation (the Fig. 4b metrics),
//! * [`VolumePredictor`] — batched multi-horizon forecasting: all
//!   lookahead horizons for N intersections in one [`gemm`]-backed call
//!   per step, allocation-free in steady state.
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_traffic::{SaePredictor, SaePredictorConfig, VolumeGenerator};
//!
//! let feed = VolumeGenerator::us25_station(42).generate_weeks(14)?;
//! let (train, test) = feed.split_at_week(13)?;
//! let predictor = SaePredictor::train(&train, &SaePredictorConfig::default())?;
//! let report = predictor.evaluate(&test)?;
//! assert!(report.overall.mre < 0.10); // the paper's "< 10%" claim
//! # Ok(())
//! # }
//! ```

mod arena;
pub mod dataset;
pub mod gemm;
pub mod nn;
mod predictor;
mod sae;
mod volume;
mod volume_predictor;

pub use arena::{BatchScratch, InferenceScratch, TrainArena, TrainMetrics};
pub use predictor::{
    DayMetrics, EvaluationReport, PredictScratch, SaePredictor, SaePredictorConfig,
};
pub use sae::{Sae, SaeConfig};
pub use volume::{HourlyVolume, VolumeGenerator, HOURS_PER_DAY, HOURS_PER_WEEK};
pub use volume_predictor::{VolumePredictor, VolumeQuery, VolumeScratch};
