//! Reusable training/inference scratch and the [`TrainMetrics`] record.
//!
//! The mini-batch trainer never allocates on its hot path: every buffer
//! it touches — gathered input rows, per-layer activations and deltas,
//! per-chunk gradient partials, packed transposed weights, the shuffle
//! order — lives in a [`TrainArena`] that is sized once per network
//! shape and recycled across mini-batches, epochs, and (via
//! [`Network::train_with`]) across the SAE's pretraining stages and
//! fine-tune. Batched inference gets the same treatment from
//! [`BatchScratch`], and the single-sample path from
//! [`InferenceScratch`].
//!
//! Arena lifecycle: a call to `ensure` compares the requested geometry
//! (layer dims, chunk count, batch capacity) against what the buffers
//! already hold. A match is a *reuse hit* — the buffers are reused as-is
//! (gradient partials are re-zeroed by the trainer, not here). A mismatch
//! reallocates and counts an *allocation*. Both counters surface in
//! [`TrainMetrics`] and in `traffic.*` telemetry, and the bench suite
//! gates on them: in steady state the allocation counter must not grow.
//!
//! [`Network::train_with`]: crate::nn::Network::train_with

use crate::gemm::GRAD_CHUNK;
use crate::nn::{Dense, Network};
use serde::{Deserialize, Serialize};

/// True when `dims` already describes the layer boundaries of `layers`
/// (checked without allocating, so the warm inference path stays
/// allocation-free).
fn dims_match(dims: &[usize], layers: &[Dense]) -> bool {
    dims.len() == layers.len() + 1
        && layers
            .iter()
            .enumerate()
            .all(|(l, layer)| dims[l] == layer.in_dim() && dims[l + 1] == layer.out_dim())
}

/// Counters and timings for one training run (one [`Network::train_with`]
/// call, or the whole SAE recipe when aggregated with [`absorb`]).
///
/// Work counters (`epochs`, `batches`, `samples`, `gemm_flops`, scratch
/// counters) are deterministic functions of the workload and are gated by
/// the bench suite's `--check-work`; wall times vary run to run. Like the
/// DP's `SolverMetrics`, this is observability, not semantics.
///
/// [`Network::train_with`]: crate::nn::Network::train_with
/// [`absorb`]: TrainMetrics::absorb
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainMetrics {
    /// Full passes over the training set.
    pub epochs: u64,
    /// Mini-batch gradient updates applied.
    pub batches: u64,
    /// Sample visits (`epochs × dataset size`).
    pub samples: u64,
    /// Multiply-add FLOPs through the gemm kernels (forward, backprop,
    /// and gradient accumulation), a pure function of the workload.
    pub gemm_flops: u64,
    /// Scratch geometries served from existing arena buffers.
    pub scratch_reuse_hits: u64,
    /// Scratch geometries that required fresh allocations.
    pub scratch_allocations: u64,
    /// Wall time in the forward/backward chunk fan-out.
    pub compute_seconds: f64,
    /// Wall time reducing chunk gradients and applying momentum updates.
    pub update_seconds: f64,
    /// Wall time in the final full-dataset MSE evaluation.
    pub eval_seconds: f64,
    /// Worker threads used for chunk fan-out (1 = sequential).
    pub threads_used: usize,
}

impl TrainMetrics {
    /// Total wall time across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.compute_seconds + self.update_seconds + self.eval_seconds
    }

    /// Accumulates another run's metrics into this one (counters and
    /// times add, thread count takes the maximum). Used to aggregate the
    /// SAE's pretraining stages and fine-tune into one record.
    pub fn absorb(&mut self, other: &TrainMetrics) {
        self.epochs += other.epochs;
        self.batches += other.batches;
        self.samples += other.samples;
        self.gemm_flops += other.gemm_flops;
        self.scratch_reuse_hits += other.scratch_reuse_hits;
        self.scratch_allocations += other.scratch_allocations;
        self.compute_seconds += other.compute_seconds;
        self.update_seconds += other.update_seconds;
        self.eval_seconds += other.eval_seconds;
        self.threads_used = self.threads_used.max(other.threads_used);
    }

    /// Publishes this run's counters and phase timings to the global
    /// [`telemetry`] registry under the `traffic.*` namespace, alongside
    /// the DP's `dp.*`. A no-op (and free) unless the crate's `telemetry`
    /// feature is enabled.
    pub fn publish(&self) {
        telemetry::add("traffic.train.runs", 1);
        telemetry::add("traffic.train.epochs", self.epochs);
        telemetry::add("traffic.train.batches", self.batches);
        telemetry::add("traffic.train.samples", self.samples);
        telemetry::add("traffic.train.gemm_flops", self.gemm_flops);
        telemetry::add("traffic.scratch.reuse_hits", self.scratch_reuse_hits);
        telemetry::add("traffic.scratch.allocations", self.scratch_allocations);
        telemetry::observe("traffic.train.compute_seconds", self.compute_seconds);
        telemetry::observe("traffic.train.update_seconds", self.update_seconds);
        telemetry::observe("traffic.train.eval_seconds", self.eval_seconds);
        telemetry::observe("traffic.train.total_seconds", self.total_seconds());
    }
}

/// Private per-chunk scratch: one worker's complete state for a
/// [`GRAD_CHUNK`]-sample slice of a mini-batch. Fully disjoint between
/// chunks, so the fan-out needs no synchronization beyond the chunk
/// partition itself.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkScratch {
    /// Per layer boundary: `GRAD_CHUNK × dims[l]` activations
    /// (`acts[0]` holds the gathered input rows).
    pub(crate) acts: Vec<Vec<f64>>,
    /// Per layer: `GRAD_CHUNK × dims[l + 1]` error terms.
    pub(crate) deltas: Vec<Vec<f64>>,
    /// Per layer: `out_dim × in_dim` gradient partials.
    pub(crate) gw: Vec<Vec<f64>>,
    /// Per layer: `out_dim` bias-gradient partials.
    pub(crate) gb: Vec<Vec<f64>>,
}

impl ChunkScratch {
    fn allocate(dims: &[usize]) -> Self {
        let layers = dims.len() - 1;
        Self {
            acts: dims.iter().map(|&d| vec![0.0; GRAD_CHUNK * d]).collect(),
            deltas: dims[1..]
                .iter()
                .map(|&d| vec![0.0; GRAD_CHUNK * d])
                .collect(),
            gw: (0..layers)
                .map(|l| vec![0.0; dims[l] * dims[l + 1]])
                .collect(),
            gb: dims[1..].iter().map(|&d| vec![0.0; d]).collect(),
        }
    }
}

/// Pre-allocated scratch for [`Network::train_with`], reusable across
/// training runs (and network shapes — a shape change just reallocates).
///
/// [`Network::train_with`]: crate::nn::Network::train_with
#[derive(Debug, Clone, Default)]
pub struct TrainArena {
    /// One private scratch per gradient chunk of the largest mini-batch.
    pub(crate) chunks: Vec<ChunkScratch>,
    /// Per layer: transposed weights, repacked after every update.
    pub(crate) packed: Vec<Vec<f64>>,
    /// The epoch shuffle order.
    pub(crate) order: Vec<usize>,
    /// Layer-boundary dims the buffers are currently sized for.
    dims: Vec<usize>,
    /// Reuse/allocation tallies since construction.
    reuse_hits: u64,
    allocations: u64,
}

impl TrainArena {
    /// Creates an empty arena; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch geometries served without allocating since construction.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Scratch geometries that required fresh allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Sizes the arena for a network with layer-boundary `dims` and
    /// mini-batches of up to `n_chunks` gradient chunks, recycling
    /// existing buffers when the geometry already matches.
    pub(crate) fn ensure(&mut self, dims: &[usize], n_chunks: usize) {
        let shape_ok = self.dims == dims;
        if shape_ok && self.chunks.len() >= n_chunks {
            self.reuse_hits += 1;
            return;
        }
        self.allocations += 1;
        if !shape_ok {
            self.dims = dims.to_vec();
            self.chunks.clear();
            let layers = dims.len() - 1;
            self.packed = (0..layers)
                .map(|l| vec![0.0; dims[l] * dims[l + 1]])
                .collect();
        }
        while self.chunks.len() < n_chunks {
            self.chunks.push(ChunkScratch::allocate(&self.dims));
        }
    }

    /// Takes the reuse/allocation deltas since `baseline`, for folding
    /// into a [`TrainMetrics`].
    pub(crate) fn stats_since(&self, baseline: (u64, u64)) -> (u64, u64) {
        (self.reuse_hits - baseline.0, self.allocations - baseline.1)
    }
}

/// Ping-pong scratch for the single-sample zero-allocation forward path
/// ([`Network::forward_into`] and friends).
///
/// [`Network::forward_into`]: crate::nn::Network::forward_into
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    /// Two buffers, each sized to the widest layer boundary; layer `l`
    /// reads from `bufs[l % 2]` and writes into `bufs[(l + 1) % 2]`.
    pub(crate) bufs: [Vec<f64>; 2],
}

impl InferenceScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows both buffers to hold `width` values.
    pub(crate) fn ensure(&mut self, width: usize) {
        for buf in &mut self.bufs {
            if buf.len() < width {
                buf.resize(width, 0.0);
            }
        }
    }
}

/// Pre-allocated scratch for the batched forward path
/// ([`Network::forward_batch_into`]): per-layer activation planes plus
/// packed transposed weights. In steady state (same network shape, batch
/// no larger than the high-water mark) a call allocates nothing.
///
/// [`Network::forward_batch_into`]: crate::nn::Network::forward_batch_into
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Per layer boundary: `capacity × dims[l]` activations.
    pub(crate) acts: Vec<Vec<f64>>,
    /// Per layer: transposed weights.
    pub(crate) packed: Vec<Vec<f64>>,
    dims: Vec<usize>,
    capacity: usize,
    reuse_hits: u64,
    allocations: u64,
    /// Multiply-add FLOPs accumulated over all calls.
    flops: u64,
}

impl BatchScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch geometries served without allocating since construction.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Scratch geometries that required fresh allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Multiply-add FLOPs accumulated across all batched forwards.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    pub(crate) fn add_flops(&mut self, flops: u64) {
        self.flops += flops;
    }

    /// Sizes the scratch for layer-boundary `dims` and `batch` rows.
    pub(crate) fn ensure(&mut self, dims: &[usize], batch: usize) {
        if self.dims == dims && self.capacity >= batch {
            self.reuse_hits += 1;
            return;
        }
        self.rebuild(dims, batch);
    }

    /// [`ensure`](BatchScratch::ensure) keyed on a network's shape; the
    /// warm-path check compares dims in place, so a hit performs no
    /// allocation at all.
    pub(crate) fn ensure_net(&mut self, net: &Network, batch: usize) {
        if dims_match(&self.dims, net.layers()) && self.capacity >= batch {
            self.reuse_hits += 1;
            return;
        }
        let dims: Vec<usize> = std::iter::once(net.in_dim())
            .chain(net.layers().iter().map(|l| l.out_dim()))
            .collect();
        self.ensure(&dims, batch);
    }

    fn rebuild(&mut self, dims: &[usize], batch: usize) {
        self.allocations += 1;
        self.capacity = self.capacity.max(batch);
        if self.dims != dims {
            self.dims = dims.to_vec();
            let layers = dims.len() - 1;
            self.packed = (0..layers)
                .map(|l| vec![0.0; dims[l] * dims[l + 1]])
                .collect();
        }
        self.acts = self
            .dims
            .iter()
            .map(|&d| vec![0.0; self.capacity * d])
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_and_maxes_threads() {
        let mut a = TrainMetrics {
            epochs: 2,
            batches: 10,
            samples: 20,
            gemm_flops: 1000,
            scratch_reuse_hits: 3,
            scratch_allocations: 1,
            compute_seconds: 0.5,
            update_seconds: 0.25,
            eval_seconds: 0.05,
            threads_used: 2,
        };
        let b = TrainMetrics {
            epochs: 1,
            batches: 5,
            samples: 10,
            gemm_flops: 500,
            scratch_reuse_hits: 7,
            scratch_allocations: 0,
            compute_seconds: 0.1,
            update_seconds: 0.1,
            eval_seconds: 0.01,
            threads_used: 4,
        };
        a.absorb(&b);
        assert_eq!(a.epochs, 3);
        assert_eq!(a.batches, 15);
        assert_eq!(a.samples, 30);
        assert_eq!(a.gemm_flops, 1500);
        assert_eq!(a.scratch_reuse_hits, 10);
        assert_eq!(a.scratch_allocations, 1);
        assert_eq!(a.threads_used, 4);
        assert!((a.total_seconds() - 1.01).abs() < 1e-12);
    }

    #[test]
    fn arena_reuses_matching_geometry() {
        let mut arena = TrainArena::new();
        arena.ensure(&[4, 3, 1], 2);
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.reuse_hits(), 0);
        arena.ensure(&[4, 3, 1], 2);
        arena.ensure(&[4, 3, 1], 1); // smaller chunk demand still fits
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.reuse_hits(), 2);
        arena.ensure(&[4, 3, 1], 5); // more chunks: grow
        assert_eq!(arena.allocations(), 2);
        arena.ensure(&[5, 2], 1); // new shape: rebuild
        assert_eq!(arena.allocations(), 3);
        assert_eq!(arena.chunks.len(), 1);
        assert_eq!(arena.chunks[0].gw[0].len(), 10);
    }

    #[test]
    fn batch_scratch_is_steady_state_after_warmup() {
        let mut s = BatchScratch::new();
        s.ensure(&[6, 4, 2], 16);
        let allocs = s.allocations();
        for _ in 0..100 {
            s.ensure(&[6, 4, 2], 16);
            s.ensure(&[6, 4, 2], 3); // smaller batches ride the capacity
        }
        assert_eq!(s.allocations(), allocs, "steady state must not allocate");
        assert_eq!(s.reuse_hits(), 200);
    }
}
