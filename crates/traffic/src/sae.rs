//! Stacked autoencoder: greedy layer-wise pretraining + supervised
//! fine-tuning (Huang et al. [10], as used by the paper in §II-B-1).
//!
//! The recipe:
//!
//! 1. For each hidden layer, train a one-hidden-layer autoencoder
//!    (sigmoid encoder, linear decoder) to reconstruct its *input*
//!    representation; keep the encoder, discard the decoder.
//! 2. Feed the training set through the encoder to obtain the next layer's
//!    input representation and repeat.
//! 3. Stack the pre-trained encoders, append a linear regression output
//!    layer, and fine-tune the whole network on the supervised target with
//!    backpropagation.

use crate::arena::{BatchScratch, InferenceScratch, TrainArena, TrainMetrics};
use crate::nn::{Activation, Dense, Network, SgdConfig};
use serde::{Deserialize, Serialize};
use velopt_common::rng::SplitMix64;
use velopt_common::{Error, Result};

/// Hyper-parameters for [`Sae::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaeConfig {
    /// Sizes of the hidden (encoder) layers, e.g. `[24, 12]`.
    pub hidden_layers: Vec<usize>,
    /// SGD settings for each autoencoder pretraining stage.
    pub pretrain: SgdConfig,
    /// SGD settings for supervised fine-tuning.
    pub finetune: SgdConfig,
    /// Seed for weight initialization and shuffling.
    pub seed: u64,
}

impl Default for SaeConfig {
    fn default() -> Self {
        Self {
            hidden_layers: vec![24, 12],
            pretrain: SgdConfig {
                epochs: 20,
                learning_rate: 0.05,
                momentum: 0.9,
                ..SgdConfig::default()
            },
            finetune: SgdConfig {
                epochs: 200,
                learning_rate: 0.05,
                momentum: 0.9,
                ..SgdConfig::default()
            },
            seed: 0x5AE,
        }
    }
}

/// A trained stacked autoencoder regressor.
///
/// # Examples
///
/// Learn `y = mean(x)` from 8-dimensional inputs:
///
/// ```
/// use velopt_common::rng::SplitMix64;
/// use velopt_traffic::{Sae, SaeConfig};
///
/// let mut rng = SplitMix64::new(3);
/// let xs: Vec<Vec<f64>> = (0..80)
///     .map(|_| (0..8).map(|_| rng.uniform(0.0, 1.0)).collect())
///     .collect();
/// let ys: Vec<Vec<f64>> =
///     xs.iter().map(|x| vec![x.iter().sum::<f64>() / 8.0]).collect();
/// let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
/// let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
///
/// let cfg = SaeConfig { hidden_layers: vec![6], ..SaeConfig::default() };
/// let sae = Sae::train(&inputs, &targets, &cfg).unwrap();
/// let pred = sae.predict(&inputs[0]);
/// assert!((pred[0] - targets[0][0]).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sae {
    network: Network,
    pretrain_losses: Vec<f64>,
    finetune_loss: f64,
    /// Aggregated over every pretraining stage plus the fine-tune.
    #[serde(default)]
    metrics: TrainMetrics,
}

impl Sae {
    /// Pretrains and fine-tunes an SAE on `(inputs, targets)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the dataset is empty/ragged or no
    /// hidden layer is configured, and [`Error::Numeric`] if training
    /// diverges.
    pub fn train(inputs: &[&[f64]], targets: &[&[f64]], cfg: &SaeConfig) -> Result<Self> {
        if cfg.hidden_layers.is_empty() {
            return Err(Error::invalid_input("SAE needs at least one hidden layer"));
        }
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(Error::invalid_input("dataset must be non-empty and paired"));
        }
        let in_dim = inputs[0].len();
        let out_dim = targets[0].len();
        if in_dim == 0 || out_dim == 0 {
            return Err(Error::invalid_input("zero-dimensional samples"));
        }

        let mut rng = SplitMix64::new(cfg.seed);
        let mut arena = TrainArena::new();
        let mut batch_scratch = BatchScratch::new();
        let mut metrics = TrainMetrics::default();
        let mut encoders: Vec<Dense> = Vec::with_capacity(cfg.hidden_layers.len());
        let mut pretrain_losses = Vec::with_capacity(cfg.hidden_layers.len());

        // Greedy layer-wise pretraining. The arena is shared across every
        // stage and the fine-tune, so only shape changes reallocate.
        let mut representation: Vec<Vec<f64>> = inputs.iter().map(|x| x.to_vec()).collect();
        let mut cur_dim = in_dim;
        let mut flat: Vec<f64> = Vec::new();
        for &hidden in &cfg.hidden_layers {
            if hidden == 0 {
                return Err(Error::invalid_input("hidden layer size must be positive"));
            }
            let mut auto = Network::new(vec![
                Dense::random(cur_dim, hidden, Activation::Sigmoid, &mut rng),
                Dense::random(hidden, cur_dim, Activation::Linear, &mut rng),
            ]);
            let refs: Vec<&[f64]> = representation.iter().map(|r| r.as_slice()).collect();
            let (loss, stage) =
                auto.train_with(&refs, &refs, &cfg.pretrain, &mut rng, &mut arena)?;
            metrics.absorb(&stage);
            pretrain_losses.push(loss);
            let mut layers = auto.into_layers();
            let decoder = layers.pop().expect("autoencoder has two layers");
            drop(decoder);
            let encoder = layers.pop().expect("autoencoder has two layers");
            // Re-encode the representation for the next stage in one
            // batched forward (bit-identical to per-row scalar forwards).
            flat.clear();
            for r in &representation {
                flat.extend_from_slice(r);
            }
            let enc_net = Network::new(vec![encoder]);
            let encoded =
                enc_net.forward_batch_into(&flat, representation.len(), &mut batch_scratch);
            representation = encoded.chunks(hidden).map(|c| c.to_vec()).collect();
            let encoder = enc_net.into_layers().pop().expect("one encoder layer");
            encoders.push(encoder);
            cur_dim = hidden;
        }

        // Stack encoders + linear head, fine-tune end to end.
        let mut layers = encoders;
        layers.push(Dense::random(
            cur_dim,
            out_dim,
            Activation::Linear,
            &mut rng,
        ));
        let mut network = Network::new(layers);
        let (finetune_loss, stage) =
            network.train_with(inputs, targets, &cfg.finetune, &mut rng, &mut arena)?;
        metrics.absorb(&stage);
        metrics.gemm_flops += batch_scratch.flops();

        Ok(Self {
            network,
            pretrain_losses,
            finetune_loss,
            metrics,
        })
    }

    /// Runs the regressor on one input.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.network.forward(x)
    }

    /// Runs the regressor on one input using caller scratch; allocates
    /// nothing once the scratch is warm. Bit-identical to [`predict`].
    ///
    /// [`predict`]: Sae::predict
    pub fn predict_into<'s>(&self, x: &[f64], scratch: &'s mut InferenceScratch) -> &'s [f64] {
        self.network.forward_into(x, scratch)
    }

    /// Runs the regressor on a batch of inputs through the gemm kernels.
    /// Each output row is bit-identical to [`predict`] on that row.
    ///
    /// [`predict`]: Sae::predict
    pub fn predict_batch(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        self.network.forward_batch(xs)
    }

    /// Batched prediction over `batch` flat row-major samples into caller
    /// scratch; allocation-free in steady state. Returns the
    /// `batch × out_dim` output plane.
    pub fn predict_batch_into<'s>(
        &self,
        xs: &[f64],
        batch: usize,
        scratch: &'s mut BatchScratch,
    ) -> &'s [f64] {
        self.network.forward_batch_into(xs, batch, scratch)
    }

    /// Work counters and phase timings aggregated over the whole training
    /// recipe (every pretraining stage plus the fine-tune).
    pub fn metrics(&self) -> &TrainMetrics {
        &self.metrics
    }

    /// Reconstruction MSE of each pretraining stage.
    pub fn pretrain_losses(&self) -> &[f64] {
        &self.pretrain_losses
    }

    /// Final supervised training MSE.
    pub fn finetune_loss(&self) -> f64 {
        self.finetune_loss
    }

    /// The underlying network (encoders + linear head).
    pub fn network(&self) -> &Network {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = SplitMix64::new(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..6).map(|_| rng.uniform(0.0, 1.0)).collect())
            .collect();
        // A smooth nonlinear target.
        let ys: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![0.5 * x[0] + 0.3 * x[1] * x[2] + 0.1])
            .collect();
        (xs, ys)
    }

    #[test]
    fn rejects_bad_configs() {
        let (xs, ys) = toy_dataset(10, 0);
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let no_hidden = SaeConfig {
            hidden_layers: vec![],
            ..SaeConfig::default()
        };
        assert!(Sae::train(&inputs, &targets, &no_hidden).is_err());
        let zero_hidden = SaeConfig {
            hidden_layers: vec![0],
            ..SaeConfig::default()
        };
        assert!(Sae::train(&inputs, &targets, &zero_hidden).is_err());
        assert!(Sae::train(&[], &[], &SaeConfig::default()).is_err());
    }

    #[test]
    fn pretraining_produces_one_loss_per_layer() {
        let (xs, ys) = toy_dataset(40, 1);
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let cfg = SaeConfig {
            hidden_layers: vec![5, 3],
            ..SaeConfig::default()
        };
        let sae = Sae::train(&inputs, &targets, &cfg).unwrap();
        assert_eq!(sae.pretrain_losses().len(), 2);
        assert_eq!(sae.network().layers().len(), 3); // 2 encoders + head
        assert!(sae.finetune_loss().is_finite());
    }

    #[test]
    fn fits_smooth_target() {
        let (xs, ys) = toy_dataset(120, 2);
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let cfg = SaeConfig {
            hidden_layers: vec![8],
            finetune: SgdConfig {
                epochs: 150,
                learning_rate: 0.05,
                momentum: 0.9,
                ..SgdConfig::default()
            },
            ..SaeConfig::default()
        };
        let sae = Sae::train(&inputs, &targets, &cfg).unwrap();
        assert!(
            sae.finetune_loss() < 1e-3,
            "loss too high: {}",
            sae.finetune_loss()
        );
        // Generalizes to unseen points from the same distribution.
        let (xs2, ys2) = toy_dataset(20, 99);
        let mut worst: f64 = 0.0;
        for (x, y) in xs2.iter().zip(&ys2) {
            worst = worst.max((sae.predict(x)[0] - y[0]).abs());
        }
        assert!(worst < 0.15, "worst holdout error {worst}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = toy_dataset(30, 3);
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let cfg = SaeConfig {
            hidden_layers: vec![4],
            ..SaeConfig::default()
        };
        let a = Sae::train(&inputs, &targets, &cfg).unwrap();
        let b = Sae::train(&inputs, &targets, &cfg).unwrap();
        assert_eq!(a.predict(&xs[0]), b.predict(&xs[0]));
    }
}
