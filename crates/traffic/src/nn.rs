//! A small, from-scratch dense neural network.
//!
//! This is the substrate for the stacked autoencoder of [`crate::Sae`]. It
//! deliberately supports exactly what the SAE recipe needs — fully-connected
//! layers with sigmoid or linear activations, mean-squared-error loss, and
//! per-sample stochastic gradient descent with momentum — and nothing more.
//!
//! # Examples
//!
//! Learn the 2-input XOR function (a classic non-linearly-separable task):
//!
//! ```
//! use velopt_common::rng::SplitMix64;
//! use velopt_traffic::nn::{Activation, Dense, Network, SgdConfig};
//!
//! let mut rng = SplitMix64::new(1);
//! let mut net = Network::new(vec![
//!     Dense::random(2, 4, Activation::Sigmoid, &mut rng),
//!     Dense::random(4, 1, Activation::Sigmoid, &mut rng),
//! ]);
//! let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let ys = [[0.0], [1.0], [1.0], [0.0]];
//! let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
//! let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
//! let cfg = SgdConfig { epochs: 4000, learning_rate: 0.9, momentum: 0.9 };
//! net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
//! assert!(net.forward(&[0.0, 1.0])[0] > 0.8);
//! assert!(net.forward(&[1.0, 1.0])[0] < 0.2);
//! ```

use serde::{Deserialize, Serialize};
use velopt_common::rng::SplitMix64;
use velopt_common::{Error, Result};

/// Layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid, used for all hidden (encoder) layers.
    Sigmoid,
    /// Identity, used for regression outputs and autoencoder decoders.
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// A fully-connected layer `y = act(W·x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    activation: Activation,
}

impl Dense {
    /// Creates a layer with small random weights (uniform in ±1/√in_dim, the
    /// classic "Xavier-ish" range that keeps sigmoids out of saturation).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn random(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut SplitMix64,
    ) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let scale = 1.0 / (in_dim as f64).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.uniform(-scale, scale))
            .collect();
        let biases = vec![0.0; out_dim];
        Self {
            in_dim,
            out_dim,
            weights,
            biases,
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut out = Vec::with_capacity(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let z: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.biases[o];
            out.push(self.activation.apply(z));
        }
        out
    }
}

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// Classical momentum coefficient in `[0, 1)`.
    pub momentum: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: 0.05,
            momentum: 0.9,
        }
    }
}

/// A feed-forward stack of [`Dense`] layers trained with MSE loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
    velocity_w: Vec<Vec<f64>>,
    velocity_b: Vec<Vec<f64>>,
}

impl Network {
    /// Builds a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions do not chain or `layers` is
    /// empty.
    pub fn new(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim, w[1].in_dim,
                "layer dimensions must chain: {} -> {}",
                w[0].out_dim, w[1].in_dim
            );
        }
        let velocity_w = layers.iter().map(|l| vec![0.0; l.weights.len()]).collect();
        let velocity_b = layers.iter().map(|l| vec![0.0; l.biases.len()]).collect();
        Self {
            layers,
            velocity_w,
            velocity_b,
        }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Consumes the network and returns its layers (used to harvest
    /// pre-trained encoder layers).
    pub fn into_layers(self) -> Vec<Dense> {
        self.layers
    }

    /// Input dimension of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimension of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim
    }

    /// Forward pass through all layers.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Mean squared error over a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the dataset is empty or ragged.
    pub fn mse(&self, inputs: &[&[f64]], targets: &[&[f64]]) -> Result<f64> {
        validate_dataset(inputs, targets, self.in_dim(), self.out_dim())?;
        let mut total = 0.0;
        for (x, t) in inputs.iter().zip(targets) {
            let y = self.forward(x);
            total += y
                .iter()
                .zip(*t)
                .map(|(yi, ti)| (yi - ti).powi(2))
                .sum::<f64>();
        }
        Ok(total / inputs.len() as f64)
    }

    /// Trains the network with per-sample SGD + momentum, shuffling the
    /// sample order every epoch.
    ///
    /// Returns the final training MSE.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on an empty/ragged dataset and
    /// [`Error::Numeric`] if the loss diverges to a non-finite value.
    pub fn train(
        &mut self,
        inputs: &[&[f64]],
        targets: &[&[f64]],
        cfg: &SgdConfig,
        rng: &mut SplitMix64,
    ) -> Result<f64> {
        validate_dataset(inputs, targets, self.in_dim(), self.out_dim())?;
        let n = inputs.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &idx in &order {
                self.step(inputs[idx], targets[idx], cfg);
            }
        }
        let mse = self.mse(inputs, targets)?;
        if !mse.is_finite() {
            return Err(Error::numeric("training diverged to non-finite loss"));
        }
        Ok(mse)
    }

    /// One SGD update on a single sample.
    fn step(&mut self, x: &[f64], target: &[f64], cfg: &SgdConfig) {
        // Forward pass, caching activations per layer (including the input).
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(activations.last().expect("nonempty"));
            activations.push(next);
        }

        // Backward pass: delta = dL/dz for each layer, starting at the output.
        let output = activations.last().expect("nonempty");
        let last = self.layers.len() - 1;
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * self.layers[last].activation.derivative_from_output(*y))
            .collect();

        for l in (0..self.layers.len()).rev() {
            let input = &activations[l];
            // Pre-compute the delta to propagate before mutating weights.
            let prev_delta: Option<Vec<f64>> = if l > 0 {
                let layer = &self.layers[l];
                let mut pd = vec![0.0; layer.in_dim];
                for (o, d) in delta.iter().enumerate().take(layer.out_dim) {
                    let row = &layer.weights[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (i, w) in row.iter().enumerate() {
                        pd[i] += w * d;
                    }
                }
                let act = self.layers[l - 1].activation;
                for (i, d) in pd.iter_mut().enumerate() {
                    *d *= act.derivative_from_output(activations[l][i]);
                }
                Some(pd)
            } else {
                None
            };

            // Momentum update for weights and biases.
            let layer = &mut self.layers[l];
            let vw = &mut self.velocity_w[l];
            let vb = &mut self.velocity_b[l];
            for o in 0..layer.out_dim {
                for (i, x) in input.iter().enumerate().take(layer.in_dim) {
                    let g = delta[o] * x;
                    let idx = o * layer.in_dim + i;
                    vw[idx] = cfg.momentum * vw[idx] - cfg.learning_rate * g;
                    layer.weights[idx] += vw[idx];
                }
                vb[o] = cfg.momentum * vb[o] - cfg.learning_rate * delta[o];
                layer.biases[o] += vb[o];
            }

            if let Some(pd) = prev_delta {
                delta = pd;
            }
        }
    }
}

fn validate_dataset(
    inputs: &[&[f64]],
    targets: &[&[f64]],
    in_dim: usize,
    out_dim: usize,
) -> Result<()> {
    if inputs.is_empty() || inputs.len() != targets.len() {
        return Err(Error::invalid_input(format!(
            "dataset must be non-empty and paired: {} inputs vs {} targets",
            inputs.len(),
            targets.len()
        )));
    }
    if inputs.iter().any(|x| x.len() != in_dim) {
        return Err(Error::invalid_input("input dimension mismatch"));
    }
    if targets.iter().any(|t| t.len() != out_dim) {
        return Err(Error::invalid_input("target dimension mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations() {
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
        assert_eq!(Activation::Linear.apply(-3.0), -3.0);
        assert_eq!(Activation::Sigmoid.derivative_from_output(0.5), 0.25);
        assert_eq!(Activation::Linear.derivative_from_output(123.0), 1.0);
    }

    #[test]
    fn dense_forward_known_weights() {
        let mut rng = SplitMix64::new(0);
        let mut layer = Dense::random(2, 1, Activation::Linear, &mut rng);
        layer.weights = vec![2.0, -1.0];
        layer.biases = vec![0.5];
        assert_eq!(layer.forward(&[3.0, 4.0]), vec![2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn dense_forward_rejects_wrong_dim() {
        let mut rng = SplitMix64::new(0);
        let layer = Dense::random(3, 1, Activation::Linear, &mut rng);
        layer.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "layer dimensions must chain")]
    fn network_rejects_mismatched_layers() {
        let mut rng = SplitMix64::new(0);
        Network::new(vec![
            Dense::random(2, 3, Activation::Sigmoid, &mut rng),
            Dense::random(4, 1, Activation::Linear, &mut rng),
        ]);
    }

    #[test]
    fn learns_linear_function() {
        // y = 2x1 - x2 + 1 should be learnable exactly by a linear layer.
        let mut rng = SplitMix64::new(42);
        let mut net = Network::new(vec![Dense::random(2, 1, Activation::Linear, &mut rng)]);
        let xs: Vec<[f64; 2]> = (0..50)
            .map(|_| [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)])
            .collect();
        let ys: Vec<[f64; 1]> = xs.iter().map(|x| [2.0 * x[0] - x[1] + 1.0]).collect();
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let cfg = SgdConfig {
            epochs: 400,
            learning_rate: 0.05,
            momentum: 0.9,
        };
        let mse = net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
        assert!(mse < 1e-6, "linear fit should be near-exact, mse={mse}");
    }

    #[test]
    fn training_reduces_loss_on_nonlinear_target() {
        let mut rng = SplitMix64::new(7);
        let mut net = Network::new(vec![
            Dense::random(1, 6, Activation::Sigmoid, &mut rng),
            Dense::random(6, 1, Activation::Linear, &mut rng),
        ]);
        let xs: Vec<[f64; 1]> = (0..40).map(|i| [i as f64 / 40.0]).collect();
        let ys: Vec<[f64; 1]> = xs
            .iter()
            .map(|x| [(std::f64::consts::TAU * x[0]).sin() * 0.5])
            .collect();
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let before = net.mse(&inputs, &targets).unwrap();
        let cfg = SgdConfig {
            epochs: 300,
            learning_rate: 0.1,
            momentum: 0.9,
        };
        let after = net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
        assert!(after < before * 0.2, "loss {before} -> {after}");
    }

    #[test]
    fn dataset_validation() {
        let mut rng = SplitMix64::new(0);
        let mut net = Network::new(vec![Dense::random(2, 1, Activation::Linear, &mut rng)]);
        let cfg = SgdConfig::default();
        let x: &[f64] = &[1.0, 2.0];
        let t: &[f64] = &[1.0];
        assert!(net.train(&[], &[], &cfg, &mut rng).is_err());
        assert!(net.train(&[x], &[], &cfg, &mut rng).is_err());
        let bad_x: &[f64] = &[1.0];
        assert!(net.train(&[bad_x], &[t], &cfg, &mut rng).is_err());
        let bad_t: &[f64] = &[1.0, 2.0];
        assert!(net.train(&[x], &[bad_t], &cfg, &mut rng).is_err());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let build = || {
            let mut rng = SplitMix64::new(5);
            let mut net = Network::new(vec![Dense::random(1, 3, Activation::Sigmoid, &mut rng)]);
            let xs: Vec<[f64; 1]> = (0..10).map(|i| [i as f64 / 10.0]).collect();
            let ys: Vec<[f64; 3]> = xs.iter().map(|x| [x[0], x[0] * 0.5, 0.2]).collect();
            let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
            let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
            net.train(&inputs, &targets, &SgdConfig::default(), &mut rng)
                .unwrap()
        };
        assert_eq!(build(), build());
    }
}
