//! A small, from-scratch dense neural network.
//!
//! This is the substrate for the stacked autoencoder of [`crate::Sae`]. It
//! deliberately supports exactly what the SAE recipe needs — fully-connected
//! layers with sigmoid or linear activations, mean-squared-error loss, and
//! mini-batch stochastic gradient descent with momentum — and nothing more.
//!
//! The hot paths run on the flat, cache-blocked kernels of the internal
//! `gemm` module: [`Network::forward_batch_into`] pushes a whole batch of
//! rows through packed-transpose matmuls, and [`Network::train_with`]
//! accumulates mini-batch gradients in a reusable [`TrainArena`], fanning
//! chunks of [`gemm::GRAD_CHUNK`] samples out over
//! [`SgdConfig::threads`] workers. Gradients are combined by a
//! fixed-order tree reduction over a chunk partition that never depends
//! on the thread count, so trained weights are **bit-identical for any
//! `threads` setting** — the same determinism guarantee the DP solver
//! advertises. With the default `batch_size: 1` the mini-batch path
//! reproduces classic per-sample SGD exactly (a 1-sample gradient average
//! is the gradient itself, bitwise).
//!
//! # Examples
//!
//! Learn the 2-input XOR function (a classic non-linearly-separable task):
//!
//! ```
//! use velopt_common::rng::SplitMix64;
//! use velopt_traffic::nn::{Activation, Dense, Network, SgdConfig};
//!
//! let mut rng = SplitMix64::new(1);
//! let mut net = Network::new(vec![
//!     Dense::random(2, 4, Activation::Sigmoid, &mut rng),
//!     Dense::random(4, 1, Activation::Sigmoid, &mut rng),
//! ]);
//! let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let ys = [[0.0], [1.0], [1.0], [0.0]];
//! let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
//! let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
//! let cfg = SgdConfig {
//!     epochs: 4000,
//!     learning_rate: 0.9,
//!     momentum: 0.9,
//!     ..SgdConfig::default()
//! };
//! net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
//! assert!(net.forward(&[0.0, 1.0])[0] > 0.8);
//! assert!(net.forward(&[1.0, 1.0])[0] < 0.2);
//! ```

use crate::arena::{ChunkScratch, InferenceScratch, TrainArena, TrainMetrics};
use crate::gemm::{self, GRAD_CHUNK};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use velopt_common::par::{effective_threads, team_scope, Team};
use velopt_common::rng::{shuffle, SplitMix64};
use velopt_common::{Error, Result};

pub use crate::arena::BatchScratch;

/// Layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid, used for all hidden (encoder) layers.
    Sigmoid,
    /// Identity, used for regression outputs and autoencoder decoders.
    Linear,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// A fully-connected layer `y = act(W·x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    activation: Activation,
}

impl Dense {
    /// Creates a layer with small random weights (uniform in ±1/√in_dim, the
    /// classic "Xavier-ish" range that keeps sigmoids out of saturation).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn random(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut SplitMix64,
    ) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let scale = 1.0 / (in_dim as f64).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.uniform(-scale, scale))
            .collect();
        let biases = vec![0.0; out_dim];
        Self {
            in_dim,
            out_dim,
            weights,
            biases,
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix, row-major `out_dim × in_dim`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias vector (`out_dim` entries).
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Forward pass for one sample, writing into caller scratch. This is
    /// the scalar reference the batch kernels are defined against: each
    /// output is a `k`-ascending dot product from a `0.0` seed, plus the
    /// bias, through the activation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim` or `out.len() != out_dim`.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        assert_eq!(out.len(), self.out_dim, "output dimension mismatch");
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let z: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.biases[o];
            *slot = self.activation.apply(z);
        }
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.out_dim];
        self.forward_into(x, &mut out);
        out
    }
}

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// Classical momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// Samples per gradient update. `1` (the default) is classic
    /// per-sample SGD, bit-identical to the historical scalar path;
    /// larger values average the gradient over a mini-batch, trading
    /// update frequency for kernel throughput. `0` is treated as `1`.
    #[serde(default)]
    pub batch_size: usize,
    /// Worker threads for the gradient-chunk fan-out; `0` means one per
    /// available core. The trained weights are bit-identical for every
    /// setting — threads only decide who computes which chunk.
    #[serde(default)]
    pub threads: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 1,
            threads: 1,
        }
    }
}

/// A feed-forward stack of [`Dense`] layers trained with MSE loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
    velocity_w: Vec<Vec<f64>>,
    velocity_b: Vec<Vec<f64>>,
}

impl Network {
    /// Builds a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions do not chain or `layers` is
    /// empty.
    pub fn new(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim, w[1].in_dim,
                "layer dimensions must chain: {} -> {}",
                w[0].out_dim, w[1].in_dim
            );
        }
        let velocity_w = layers.iter().map(|l| vec![0.0; l.weights.len()]).collect();
        let velocity_b = layers.iter().map(|l| vec![0.0; l.biases.len()]).collect();
        Self {
            layers,
            velocity_w,
            velocity_b,
        }
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Consumes the network and returns its layers (used to harvest
    /// pre-trained encoder layers).
    pub fn into_layers(self) -> Vec<Dense> {
        self.layers
    }

    /// Input dimension of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimension of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim
    }

    /// Layer-boundary dimensions `[in, hidden…, out]`.
    fn boundary_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        dims.push(self.in_dim());
        dims.extend(self.layers.iter().map(|l| l.out_dim));
        dims
    }

    /// Widest layer boundary (for sizing ping-pong scratch).
    fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.in_dim.max(l.out_dim))
            .max()
            .expect("network has layers")
    }

    /// Forward pass through all layers.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut scratch = InferenceScratch::new();
        self.forward_into(x, &mut scratch).to_vec()
    }

    /// Forward pass through all layers into caller scratch, allocating
    /// nothing once the scratch is warm. Bit-identical to [`forward`].
    ///
    /// [`forward`]: Network::forward
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not the network's input dimension.
    pub fn forward_into<'s>(&self, x: &[f64], scratch: &'s mut InferenceScratch) -> &'s [f64] {
        assert_eq!(x.len(), self.in_dim(), "input dimension mismatch");
        scratch.ensure(self.max_width());
        scratch.bufs[0][..x.len()].copy_from_slice(x);
        for (l, layer) in self.layers.iter().enumerate() {
            let [buf0, buf1] = &mut scratch.bufs;
            let (src, dst) = if l % 2 == 0 {
                (&*buf0, buf1)
            } else {
                (&*buf1, buf0)
            };
            layer.forward_into(&src[..layer.in_dim], &mut dst[..layer.out_dim]);
        }
        &scratch.bufs[self.layers.len() % 2][..self.out_dim()]
    }

    /// Batched forward pass over `batch` row-major samples in `xs`
    /// (`batch × in_dim`, flat), returning the `batch × out_dim` output
    /// plane. Runs on the packed-transpose gemm kernels; in steady state
    /// (warm scratch, batch no larger than the high-water mark) it
    /// allocates nothing. Each output row is bit-identical to a scalar
    /// [`forward`] of the same input row.
    ///
    /// [`forward`]: Network::forward
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != batch * in_dim`.
    pub fn forward_batch_into<'s>(
        &self,
        xs: &[f64],
        batch: usize,
        scratch: &'s mut BatchScratch,
    ) -> &'s [f64] {
        assert_eq!(xs.len(), batch * self.in_dim(), "input dimension mismatch");
        scratch.ensure_net(self, batch);
        scratch.acts[0][..xs.len()].copy_from_slice(xs);
        let mut flops = 0u64;
        for (l, layer) in self.layers.iter().enumerate() {
            gemm::pack_transpose(
                &layer.weights,
                layer.in_dim,
                layer.out_dim,
                &mut scratch.packed[l],
            );
            let (lo, hi) = scratch.acts.split_at_mut(l + 1);
            flops += gemm::forward_packed(
                &scratch.packed[l],
                &layer.biases,
                layer.activation,
                layer.in_dim,
                layer.out_dim,
                &lo[l][..batch * layer.in_dim],
                batch,
                &mut hi[0][..batch * layer.out_dim],
            );
        }
        scratch.add_flops(flops);
        &scratch.acts[self.layers.len()][..batch * self.out_dim()]
    }

    /// Convenience wrapper over [`forward_batch_into`]: gathers the rows,
    /// runs the batch kernels once, and splits the output back into one
    /// `Vec` per sample.
    ///
    /// [`forward_batch_into`]: Network::forward_batch_into
    ///
    /// # Panics
    ///
    /// Panics if any row's length is not the network's input dimension.
    pub fn forward_batch(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        let in_dim = self.in_dim();
        let mut flat = Vec::with_capacity(xs.len() * in_dim);
        for x in xs {
            assert_eq!(x.len(), in_dim, "input dimension mismatch");
            flat.extend_from_slice(x);
        }
        let mut scratch = BatchScratch::new();
        let out = self.forward_batch_into(&flat, xs.len(), &mut scratch);
        out.chunks(self.out_dim()).map(|c| c.to_vec()).collect()
    }

    /// Mean squared error over a dataset, evaluated through one batched
    /// forward (each row bit-identical to a scalar [`forward`], and the
    /// error summed in sample order, so the value matches a per-sample
    /// evaluation exactly).
    ///
    /// [`forward`]: Network::forward
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the dataset is empty or ragged.
    pub fn mse(&self, inputs: &[&[f64]], targets: &[&[f64]]) -> Result<f64> {
        validate_dataset(inputs, targets, self.in_dim(), self.out_dim())?;
        let mut flat = Vec::with_capacity(inputs.len() * self.in_dim());
        for x in inputs {
            flat.extend_from_slice(x);
        }
        let mut scratch = BatchScratch::new();
        let out = self.forward_batch_into(&flat, inputs.len(), &mut scratch);
        let mut total = 0.0;
        for (row, t) in out.chunks(self.out_dim()).zip(targets) {
            total += row
                .iter()
                .zip(*t)
                .map(|(yi, ti)| (yi - ti).powi(2))
                .sum::<f64>();
        }
        Ok(total / inputs.len() as f64)
    }

    /// Trains the network with mini-batch SGD + momentum, shuffling the
    /// sample order every epoch. Returns the final training MSE.
    ///
    /// Equivalent to [`train_with`] on a throwaway [`TrainArena`]; callers
    /// training repeatedly (the SAE recipe, retraining loops) should hold
    /// an arena and call [`train_with`] to recycle the scratch buffers.
    ///
    /// [`train_with`]: Network::train_with
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on an empty/ragged dataset and
    /// [`Error::Numeric`] if the loss diverges to a non-finite value.
    pub fn train(
        &mut self,
        inputs: &[&[f64]],
        targets: &[&[f64]],
        cfg: &SgdConfig,
        rng: &mut SplitMix64,
    ) -> Result<f64> {
        let mut arena = TrainArena::new();
        self.train_with(inputs, targets, cfg, rng, &mut arena)
            .map(|(mse, _)| mse)
    }

    /// Trains the network with mini-batch SGD + momentum using
    /// caller-owned scratch, returning the final training MSE and the
    /// run's [`TrainMetrics`].
    ///
    /// Each epoch shuffles the sample order ([`velopt_common::rng::shuffle`],
    /// one RNG draw per swap) and walks it in consecutive mini-batches of
    /// [`SgdConfig::batch_size`]. A mini-batch is cut into fixed
    /// [`gemm::GRAD_CHUNK`]-sample chunks; each chunk forwards its
    /// samples, back-propagates, and accumulates private gradient
    /// partials (fanned out over [`SgdConfig::threads`] workers), and the
    /// partials are combined by a fixed-order tree reduction before one
    /// averaged momentum update. Because the chunk partition and the
    /// reduction order depend only on the batch geometry, the trained
    /// weights are bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on an empty/ragged dataset and
    /// [`Error::Numeric`] if the loss diverges to a non-finite value.
    pub fn train_with(
        &mut self,
        inputs: &[&[f64]],
        targets: &[&[f64]],
        cfg: &SgdConfig,
        rng: &mut SplitMix64,
        arena: &mut TrainArena,
    ) -> Result<(f64, TrainMetrics)> {
        validate_dataset(inputs, targets, self.in_dim(), self.out_dim())?;
        let n = inputs.len();
        let batch_size = cfg.batch_size.max(1).min(n);
        let threads = effective_threads(cfg.threads);
        let dims = self.boundary_dims();
        let scratch_baseline = (arena.reuse_hits(), arena.allocations());
        arena.ensure(&dims, batch_size.div_ceil(GRAD_CHUNK));

        let mut metrics = TrainMetrics {
            threads_used: threads,
            ..TrainMetrics::default()
        };

        let arena_chunks = &mut arena.chunks;
        let arena_packed = &mut arena.packed;
        let arena_order = &mut arena.order;
        arena_order.clear();
        arena_order.extend(0..n);

        team_scope(threads, |team| {
            for _ in 0..cfg.epochs {
                shuffle(arena_order, rng);
                for batch_idxs in arena_order.chunks(batch_size) {
                    let flops = run_batch(
                        &mut self.layers,
                        &mut self.velocity_w,
                        &mut self.velocity_b,
                        arena_chunks,
                        arena_packed,
                        inputs,
                        targets,
                        batch_idxs,
                        cfg,
                        team,
                        &mut metrics,
                    );
                    metrics.gemm_flops += flops;
                    metrics.batches += 1;
                    metrics.samples += batch_idxs.len() as u64;
                }
                metrics.epochs += 1;
            }
        });

        let t_eval = Instant::now();
        let mse = self.mse(inputs, targets)?;
        metrics.eval_seconds += t_eval.elapsed().as_secs_f64();
        let (hits, allocs) = arena.stats_since(scratch_baseline);
        metrics.scratch_reuse_hits = hits;
        metrics.scratch_allocations = allocs;
        metrics.publish();
        if !mse.is_finite() {
            return Err(Error::numeric("training diverged to non-finite loss"));
        }
        Ok((mse, metrics))
    }
}

/// One mini-batch: pack, chunk fan-out, tree reduction, momentum update.
/// Returns the batch's gemm FLOP count (summed in chunk order).
#[allow(clippy::too_many_arguments)]
fn run_batch(
    layers: &mut [Dense],
    velocity_w: &mut [Vec<f64>],
    velocity_b: &mut [Vec<f64>],
    chunks: &mut [ChunkScratch],
    packed: &mut [Vec<f64>],
    inputs: &[&[f64]],
    targets: &[&[f64]],
    batch_idxs: &[usize],
    cfg: &SgdConfig,
    team: &Team<'_>,
    metrics: &mut TrainMetrics,
) -> u64 {
    let bl = batch_idxs.len();
    let n_chunks = bl.div_ceil(GRAD_CHUNK);

    let t_compute = Instant::now();
    for (l, layer) in layers.iter().enumerate() {
        gemm::pack_transpose(&layer.weights, layer.in_dim, layer.out_dim, &mut packed[l]);
    }
    let layers_ref: &[Dense] = layers;
    let packed_ref: &[Vec<f64>] = packed;
    let chunk_flops = team.map_chunks(&mut chunks[..n_chunks], 1, |ci, cs| {
        let idxs = &batch_idxs[ci * GRAD_CHUNK..(ci * GRAD_CHUNK + GRAD_CHUNK).min(bl)];
        chunk_forward_backward(layers_ref, packed_ref, inputs, targets, idxs, &mut cs[0])
    });
    metrics.compute_seconds += t_compute.elapsed().as_secs_f64();

    let t_update = Instant::now();
    gemm::tree_reduce(&mut chunks[..n_chunks], |a, b| {
        for (ga, gb) in a.gw.iter_mut().zip(&b.gw) {
            gemm::vec_add(ga, gb);
        }
        for (ga, gb) in a.gb.iter_mut().zip(&b.gb) {
            gemm::vec_add(ga, gb);
        }
    });

    let bl_f = bl as f64;
    for l in (0..layers.len()).rev() {
        let layer = &mut layers[l];
        let gw = &chunks[0].gw[l];
        let gb = &chunks[0].gb[l];
        gemm::sgd_update(
            &mut layer.weights,
            &mut velocity_w[l],
            gw,
            bl_f,
            cfg.momentum,
            cfg.learning_rate,
        );
        gemm::sgd_update(
            &mut layer.biases,
            &mut velocity_b[l],
            gb,
            bl_f,
            cfg.momentum,
            cfg.learning_rate,
        );
    }
    metrics.update_seconds += t_update.elapsed().as_secs_f64();

    // Summed in chunk order, so the total is deterministic too.
    chunk_flops.into_iter().sum()
}

/// Forward + backward + gradient accumulation for one chunk's samples,
/// entirely in the chunk's private scratch. Returns the FLOP count.
fn chunk_forward_backward(
    layers: &[Dense],
    packed: &[Vec<f64>],
    inputs: &[&[f64]],
    targets: &[&[f64]],
    idxs: &[usize],
    cs: &mut ChunkScratch,
) -> u64 {
    let m = idxs.len();
    let mut flops = 0u64;

    // Gather this chunk's input rows.
    let in_dim = layers[0].in_dim;
    for (r, &idx) in idxs.iter().enumerate() {
        cs.acts[0][r * in_dim..(r + 1) * in_dim].copy_from_slice(inputs[idx]);
    }

    // Forward through every layer.
    for (l, layer) in layers.iter().enumerate() {
        let (lo, hi) = cs.acts.split_at_mut(l + 1);
        flops += gemm::forward_packed(
            &packed[l],
            &layer.biases,
            layer.activation,
            layer.in_dim,
            layer.out_dim,
            &lo[l][..m * layer.in_dim],
            m,
            &mut hi[0][..m * layer.out_dim],
        );
    }

    // Output error, gathering target rows on the fly.
    let last = layers.len() - 1;
    let out_dim = layers[last].out_dim;
    {
        let y = &cs.acts[last + 1];
        let d = &mut cs.deltas[last];
        let act = layers[last].activation;
        for (r, &idx) in idxs.iter().enumerate() {
            let t_row = targets[idx];
            for o in 0..out_dim {
                let yv = y[r * out_dim + o];
                d[r * out_dim + o] = (yv - t_row[o]) * act.derivative_from_output(yv);
            }
        }
    }

    // Backward: propagate deltas and accumulate gradient partials.
    for l in (0..layers.len()).rev() {
        let layer = &layers[l];
        if l > 0 {
            let (dlo, dhi) = cs.deltas.split_at_mut(l);
            flops += gemm::input_grad(
                &layer.weights,
                layer.in_dim,
                layer.out_dim,
                &dhi[0][..m * layer.out_dim],
                m,
                layers[l - 1].activation,
                &cs.acts[l][..m * layer.in_dim],
                &mut dlo[l - 1][..m * layer.in_dim],
            );
        }
        cs.gw[l].fill(0.0);
        cs.gb[l].fill(0.0);
        flops += gemm::accumulate_grads(
            &cs.deltas[l][..m * layer.out_dim],
            &cs.acts[l][..m * layer.in_dim],
            m,
            layer.in_dim,
            layer.out_dim,
            &mut cs.gw[l],
            &mut cs.gb[l],
        );
    }
    flops
}

fn validate_dataset(
    inputs: &[&[f64]],
    targets: &[&[f64]],
    in_dim: usize,
    out_dim: usize,
) -> Result<()> {
    if inputs.is_empty() || inputs.len() != targets.len() {
        return Err(Error::invalid_input(format!(
            "dataset must be non-empty and paired: {} inputs vs {} targets",
            inputs.len(),
            targets.len()
        )));
    }
    if inputs.iter().any(|x| x.len() != in_dim) {
        return Err(Error::invalid_input("input dimension mismatch"));
    }
    if targets.iter().any(|t| t.len() != out_dim) {
        return Err(Error::invalid_input("target dimension mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations() {
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
        assert_eq!(Activation::Linear.apply(-3.0), -3.0);
        assert_eq!(Activation::Sigmoid.derivative_from_output(0.5), 0.25);
        assert_eq!(Activation::Linear.derivative_from_output(123.0), 1.0);
    }

    #[test]
    fn dense_forward_known_weights() {
        let mut rng = SplitMix64::new(0);
        let mut layer = Dense::random(2, 1, Activation::Linear, &mut rng);
        layer.weights = vec![2.0, -1.0];
        layer.biases = vec![0.5];
        assert_eq!(layer.forward(&[3.0, 4.0]), vec![2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn dense_forward_rejects_wrong_dim() {
        let mut rng = SplitMix64::new(0);
        let layer = Dense::random(3, 1, Activation::Linear, &mut rng);
        layer.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "layer dimensions must chain")]
    fn network_rejects_mismatched_layers() {
        let mut rng = SplitMix64::new(0);
        Network::new(vec![
            Dense::random(2, 3, Activation::Sigmoid, &mut rng),
            Dense::random(4, 1, Activation::Linear, &mut rng),
        ]);
    }

    #[test]
    fn forward_into_matches_forward_bitwise() {
        let mut rng = SplitMix64::new(21);
        let net = Network::new(vec![
            Dense::random(5, 7, Activation::Sigmoid, &mut rng),
            Dense::random(7, 4, Activation::Sigmoid, &mut rng),
            Dense::random(4, 2, Activation::Linear, &mut rng),
        ]);
        let mut scratch = InferenceScratch::new();
        for _ in 0..20 {
            let x: Vec<f64> = (0..5).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let a = net.forward(&x);
            let b = net.forward_into(&x, &mut scratch);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn forward_batch_handles_odd_tile_remainders() {
        // Batch sizes straddling the MR=4 register-tile boundary.
        let mut rng = SplitMix64::new(31);
        let net = Network::new(vec![
            Dense::random(3, 5, Activation::Sigmoid, &mut rng),
            Dense::random(5, 2, Activation::Linear, &mut rng),
        ]);
        for batch in [1usize, 7, 8, 9, 16, 17] {
            let xs: Vec<Vec<f64>> = (0..batch)
                .map(|_| (0..3).map(|_| rng.uniform(-1.0, 1.0)).collect())
                .collect();
            let refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
            let rows = net.forward_batch(&refs);
            assert_eq!(rows.len(), batch);
            for (x, row) in refs.iter().zip(&rows) {
                let scalar = net.forward(x);
                assert_eq!(
                    row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "batch={batch}"
                );
            }
        }
    }

    #[test]
    fn learns_linear_function() {
        // y = 2x1 - x2 + 1 should be learnable exactly by a linear layer.
        let mut rng = SplitMix64::new(42);
        let mut net = Network::new(vec![Dense::random(2, 1, Activation::Linear, &mut rng)]);
        let xs: Vec<[f64; 2]> = (0..50)
            .map(|_| [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)])
            .collect();
        let ys: Vec<[f64; 1]> = xs.iter().map(|x| [2.0 * x[0] - x[1] + 1.0]).collect();
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let cfg = SgdConfig {
            epochs: 400,
            learning_rate: 0.05,
            momentum: 0.9,
            ..SgdConfig::default()
        };
        let mse = net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
        assert!(mse < 1e-6, "linear fit should be near-exact, mse={mse}");
    }

    #[test]
    fn training_reduces_loss_on_nonlinear_target() {
        let mut rng = SplitMix64::new(7);
        let mut net = Network::new(vec![
            Dense::random(1, 6, Activation::Sigmoid, &mut rng),
            Dense::random(6, 1, Activation::Linear, &mut rng),
        ]);
        let xs: Vec<[f64; 1]> = (0..40).map(|i| [i as f64 / 40.0]).collect();
        let ys: Vec<[f64; 1]> = xs
            .iter()
            .map(|x| [(std::f64::consts::TAU * x[0]).sin() * 0.5])
            .collect();
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let before = net.mse(&inputs, &targets).unwrap();
        let cfg = SgdConfig {
            epochs: 300,
            learning_rate: 0.1,
            momentum: 0.9,
            ..SgdConfig::default()
        };
        let after = net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
        assert!(after < before * 0.2, "loss {before} -> {after}");
    }

    #[test]
    fn mini_batches_also_learn() {
        // The batched path must converge too (same task as above, larger
        // batch, more epochs to compensate for fewer updates).
        let mut rng = SplitMix64::new(7);
        let mut net = Network::new(vec![
            Dense::random(1, 6, Activation::Sigmoid, &mut rng),
            Dense::random(6, 1, Activation::Linear, &mut rng),
        ]);
        let xs: Vec<[f64; 1]> = (0..40).map(|i| [i as f64 / 40.0]).collect();
        let ys: Vec<[f64; 1]> = xs
            .iter()
            .map(|x| [(std::f64::consts::TAU * x[0]).sin() * 0.5])
            .collect();
        let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
        let before = net.mse(&inputs, &targets).unwrap();
        let cfg = SgdConfig {
            epochs: 2000,
            learning_rate: 0.1,
            momentum: 0.9,
            batch_size: 10,
            threads: 2,
        };
        let mut arena = TrainArena::new();
        let (after, metrics) = net
            .train_with(&inputs, &targets, &cfg, &mut rng, &mut arena)
            .unwrap();
        assert!(after < before * 0.2, "loss {before} -> {after}");
        assert_eq!(metrics.epochs, 2000);
        assert_eq!(metrics.batches, 2000 * 4); // 40 samples / batch 10
        assert_eq!(metrics.samples, 2000 * 40);
        assert!(metrics.gemm_flops > 0);
        assert_eq!(metrics.threads_used, 2);
        // One geometry allocation, then every batch reuses it.
        assert_eq!(metrics.scratch_allocations, 1);
        assert_eq!(metrics.scratch_reuse_hits, 0); // ensure ran once pre-warm
    }

    #[test]
    fn batch_size_one_matches_any_batch_partition_determinism() {
        // Same seed, same data: batch_size=1 twice must agree bitwise, and
        // a 2-thread run of a batched config must agree with its 1-thread
        // twin (the full property test sweeps random shapes).
        let data = || {
            let mut rng = SplitMix64::new(3);
            let xs: Vec<[f64; 2]> = (0..23)
                .map(|_| [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)])
                .collect();
            let ys: Vec<[f64; 1]> = xs.iter().map(|x| [x[0] * 0.3 - x[1]]).collect();
            (xs, ys)
        };
        let run = |batch_size: usize, threads: usize| {
            let (xs, ys) = data();
            let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
            let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
            let mut rng = SplitMix64::new(11);
            let mut net = Network::new(vec![
                Dense::random(2, 4, Activation::Sigmoid, &mut rng),
                Dense::random(4, 1, Activation::Linear, &mut rng),
            ]);
            let cfg = SgdConfig {
                epochs: 30,
                learning_rate: 0.05,
                momentum: 0.9,
                batch_size,
                threads,
            };
            net.train(&inputs, &targets, &cfg, &mut rng).unwrap();
            net.layers()
                .iter()
                .flat_map(|l| l.weights().iter().chain(l.biases()).map(|v| v.to_bits()))
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(1, 1), run(1, 2));
        assert_eq!(run(10, 1), run(10, 2));
        assert_eq!(run(10, 1), run(10, 4));
    }

    #[test]
    fn dataset_validation() {
        let mut rng = SplitMix64::new(0);
        let mut net = Network::new(vec![Dense::random(2, 1, Activation::Linear, &mut rng)]);
        let cfg = SgdConfig::default();
        let x: &[f64] = &[1.0, 2.0];
        let t: &[f64] = &[1.0];
        assert!(net.train(&[], &[], &cfg, &mut rng).is_err());
        assert!(net.train(&[x], &[], &cfg, &mut rng).is_err());
        let bad_x: &[f64] = &[1.0];
        assert!(net.train(&[bad_x], &[t], &cfg, &mut rng).is_err());
        let bad_t: &[f64] = &[1.0, 2.0];
        assert!(net.train(&[x], &[bad_t], &cfg, &mut rng).is_err());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let build = || {
            let mut rng = SplitMix64::new(5);
            let mut net = Network::new(vec![Dense::random(1, 3, Activation::Sigmoid, &mut rng)]);
            let xs: Vec<[f64; 1]> = (0..10).map(|i| [i as f64 / 10.0]).collect();
            let ys: Vec<[f64; 3]> = xs.iter().map(|x| [x[0], x[0] * 0.5, 0.2]).collect();
            let inputs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
            let targets: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
            net.train(&inputs, &targets, &SgdConfig::default(), &mut rng)
                .unwrap()
        };
        assert_eq!(build(), build());
    }
}
