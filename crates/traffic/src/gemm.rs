//! Cache-blocked mini-batch kernels for the dense network.
//!
//! Everything the SAE trainer and the batched predictor do on the hot
//! path is one of four flat, allocation-free kernels over row-major
//! buffers:
//!
//! * [`forward_packed`] — `out = act(X · Wᵀ + b)` for a whole mini-batch,
//!   with the weights pre-transposed by [`pack_transpose`] so the inner
//!   loop runs unit-stride over output columns,
//! * [`output_delta`] — the MSE output-layer error `δ = (y − t)·act'(y)`,
//! * [`input_grad`] — back-propagated error `δ_prev = (Wᵀδ)·act'(x)`,
//! * [`accumulate_grads`] — per-chunk gradient accumulation
//!   `∇W += δᵀX`, `∇b += Σδ`.
//!
//! # Bit-identity contract
//!
//! Each kernel's floating-point accumulation order is *defined* to match
//! the scalar reference path ([`Dense::forward`] and the single-sample
//! backprop recurrence) element for element:
//!
//! * forward dots sum over the input index `k` in ascending order from a
//!   `0.0` seed, then add the bias, then apply the activation — exactly
//!   the scalar `Σ_k w[o,k]·x[k] + b[o]`;
//! * input gradients accumulate over the output index `o` in ascending
//!   order, then scale by the activation derivative;
//! * weight gradients accumulate over the sample index `b` in ascending
//!   order within a chunk.
//!
//! Blocking ([`MR`] × [`NR`] register tiles in the gemm-shaped kernels)
//! only changes *which* dot products are in flight together, never the
//! order of additions within one, and no kernel uses fused multiply-add
//! (an FMA would round differently than the scalar `mul` + `add` pair).
//! The payoff: every partial sum is independent across tile lanes, so the
//! inner loops vectorize without reassociation — and the tile's partial
//! sums live in registers across the whole shared-dimension loop instead
//! of round-tripping through the output buffer — while `forward_batch`
//! stays bit-identical to N scalar [`Dense::forward`] calls — the
//! property the crate's proptests pin down with [`f64::to_bits`].
//!
//! [`Dense::forward`]: crate::nn::Dense::forward

use crate::nn::Activation;

/// AVX2 variants of the full-tile microkernels, selected at runtime.
///
/// Each function performs *exactly* the operations of its portable
/// counterpart in the same order — `vmulpd` + `vaddpd`, never a fused
/// multiply-add — so the results are bit-identical; AVX2 only widens the
/// lanes from the two doubles the autovectorizer gets out of baseline
/// SSE2 to four.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// One-time (cached by std) AVX2 probe.
    #[inline]
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[inline]
    unsafe fn store_tile(acc0: &[__m256d; MR], acc1: &[__m256d; MR]) -> [[f64; NR]; MR] {
        let mut out = [[0.0; NR]; MR];
        for bi in 0..MR {
            _mm256_storeu_pd(out[bi].as_mut_ptr(), acc0[bi]);
            _mm256_storeu_pd(out[bi].as_mut_ptr().add(4), acc1[bi]);
        }
        out
    }

    /// Full forward tile: `acc[bi][j] = Σ_k wt[k, j0+j] · xs[b0+bi, k]`,
    /// `k` ascending from zero — the portable tile's exact order.
    ///
    /// # Safety
    ///
    /// Requires AVX2, `wt` of shape `in_dim × out_dim`, `xs` holding rows
    /// `b0..b0+MR`, and a full `NR` columns at `j0`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn forward_tile(
        wt: &[f64],
        in_dim: usize,
        out_dim: usize,
        xs: &[f64],
        b0: usize,
        j0: usize,
    ) -> [[f64; NR]; MR] {
        let mut acc0 = [_mm256_setzero_pd(); MR];
        let mut acc1 = [_mm256_setzero_pd(); MR];
        for k in 0..in_dim {
            let wp = wt.as_ptr().add(k * out_dim + j0);
            let w0 = _mm256_loadu_pd(wp);
            let w1 = _mm256_loadu_pd(wp.add(4));
            for bi in 0..MR {
                let x = _mm256_set1_pd(*xs.get_unchecked((b0 + bi) * in_dim + k));
                acc0[bi] = _mm256_add_pd(acc0[bi], _mm256_mul_pd(w0, x));
                acc1[bi] = _mm256_add_pd(acc1[bi], _mm256_mul_pd(w1, x));
            }
        }
        store_tile(&acc0, &acc1)
    }

    /// Full backprop tile: `acc[bi][i] = Σ_o weights[o, i0+i] ·
    /// deltas[b0+bi, o]`, `o` ascending from zero.
    ///
    /// # Safety
    ///
    /// Requires AVX2, `weights` of shape `out_dim × in_dim`, `deltas`
    /// holding rows `b0..b0+MR`, and a full `NR` columns at `i0`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn input_grad_tile(
        weights: &[f64],
        in_dim: usize,
        out_dim: usize,
        deltas: &[f64],
        b0: usize,
        i0: usize,
    ) -> [[f64; NR]; MR] {
        let mut acc0 = [_mm256_setzero_pd(); MR];
        let mut acc1 = [_mm256_setzero_pd(); MR];
        for o in 0..out_dim {
            let wp = weights.as_ptr().add(o * in_dim + i0);
            let w0 = _mm256_loadu_pd(wp);
            let w1 = _mm256_loadu_pd(wp.add(4));
            for bi in 0..MR {
                let d = _mm256_set1_pd(*deltas.get_unchecked((b0 + bi) * out_dim + o));
                acc0[bi] = _mm256_add_pd(acc0[bi], _mm256_mul_pd(w0, d));
                acc1[bi] = _mm256_add_pd(acc1[bi], _mm256_mul_pd(w1, d));
            }
        }
        store_tile(&acc0, &acc1)
    }

    /// Full gradient tile: folds `Σ_b deltas[b, o0+oi] · xs[b, i0+i]`
    /// (`b` ascending) into the `MR × NR` block of `gw` at `(o0, i0)`.
    ///
    /// # Safety
    ///
    /// Requires AVX2, `gw` of shape `out_dim × in_dim` with a full tile
    /// at `(o0, i0)`, and `deltas`/`xs` holding `batch` rows.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_tile(
        deltas: &[f64],
        xs: &[f64],
        batch: usize,
        in_dim: usize,
        out_dim: usize,
        gw: &mut [f64],
        o0: usize,
        i0: usize,
    ) {
        let mut acc0 = [_mm256_setzero_pd(); MR];
        let mut acc1 = [_mm256_setzero_pd(); MR];
        for oi in 0..MR {
            let gp = gw.as_ptr().add((o0 + oi) * in_dim + i0);
            acc0[oi] = _mm256_loadu_pd(gp);
            acc1[oi] = _mm256_loadu_pd(gp.add(4));
        }
        for b in 0..batch {
            let xp = xs.as_ptr().add(b * in_dim + i0);
            let x0 = _mm256_loadu_pd(xp);
            let x1 = _mm256_loadu_pd(xp.add(4));
            for oi in 0..MR {
                let d = _mm256_set1_pd(*deltas.get_unchecked(b * out_dim + o0 + oi));
                acc0[oi] = _mm256_add_pd(acc0[oi], _mm256_mul_pd(x0, d));
                acc1[oi] = _mm256_add_pd(acc1[oi], _mm256_mul_pd(x1, d));
            }
        }
        for oi in 0..MR {
            let gp = gw.as_mut_ptr().add((o0 + oi) * in_dim + i0);
            _mm256_storeu_pd(gp, acc0[oi]);
            _mm256_storeu_pd(gp.add(4), acc1[oi]);
        }
    }

    /// Lane-widened momentum step over the leading `len - len % 4`
    /// elements; returns how many it handled. IEEE `div`/`mul`/`sub`/`add`
    /// are exact per lane, so each element matches the scalar formula
    /// bitwise.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `params`, `velocity`, `grads` of equal length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sgd_update(
        params: &mut [f64],
        velocity: &mut [f64],
        grads: &[f64],
        scale: f64,
        momentum: f64,
        learning_rate: f64,
    ) -> usize {
        let n = params.len() & !3;
        let vscale = _mm256_set1_pd(scale);
        let vmom = _mm256_set1_pd(momentum);
        let vlr = _mm256_set1_pd(learning_rate);
        for i in (0..n).step_by(4) {
            let g = _mm256_div_pd(_mm256_loadu_pd(grads.as_ptr().add(i)), vscale);
            let v = _mm256_sub_pd(
                _mm256_mul_pd(vmom, _mm256_loadu_pd(velocity.as_ptr().add(i))),
                _mm256_mul_pd(vlr, g),
            );
            _mm256_storeu_pd(velocity.as_mut_ptr().add(i), v);
            let w = _mm256_add_pd(_mm256_loadu_pd(params.as_ptr().add(i)), v);
            _mm256_storeu_pd(params.as_mut_ptr().add(i), w);
        }
        n
    }

    /// Lane-widened `dst[i] += src[i]` over the leading `len - len % 4`
    /// elements; returns how many it handled.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `dst`, `src` of equal length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vec_add(dst: &mut [f64], src: &[f64]) -> usize {
        let n = dst.len() & !3;
        for i in (0..n).step_by(4) {
            let s = _mm256_add_pd(
                _mm256_loadu_pd(dst.as_ptr().add(i)),
                _mm256_loadu_pd(src.as_ptr().add(i)),
            );
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), s);
        }
        n
    }
}

/// Rows of the mini-batch per register tile: with [`NR`] output columns,
/// the tile's `MR × NR` partial sums live in SIMD registers across the
/// whole shared-dimension loop, so the hot loop never touches the output
/// buffer. `4 × 8` doubles (eight 4-lane vectors) leaves headroom for the
/// streamed weight row and broadcast inputs on 16-register machines.
pub const MR: usize = 4;

/// Output columns per register tile (see [`MR`]).
pub const NR: usize = 8;

/// Samples per gradient chunk. This is the unit of the fixed-order tree
/// reduction: a mini-batch is cut into `ceil(len / GRAD_CHUNK)` chunks
/// *independent of the thread count*, each chunk accumulates its samples
/// in ascending order, and the per-chunk sums are combined by
/// [`tree_reduce`]. Threads only decide which worker computes which
/// chunk, so trained weights are bit-identical for any thread count.
pub const GRAD_CHUNK: usize = 8;

/// Packs `weights` (row-major `out_dim × in_dim`) into `packed`
/// (row-major `in_dim × out_dim`, i.e. the transpose) so
/// [`forward_packed`] can run unit-stride over output columns.
pub fn pack_transpose(weights: &[f64], in_dim: usize, out_dim: usize, packed: &mut [f64]) {
    debug_assert_eq!(weights.len(), in_dim * out_dim);
    debug_assert_eq!(packed.len(), in_dim * out_dim);
    for o in 0..out_dim {
        let row = &weights[o * in_dim..(o + 1) * in_dim];
        for (k, &w) in row.iter().enumerate() {
            packed[k * out_dim + o] = w;
        }
    }
}

/// One full forward register tile, portable path (see the `x86` module
/// for the lane-widened twin): `acc[bi][j] = Σ_k wt[k, j0+j]·xs[b0+bi, k]`.
#[inline]
fn forward_tile(
    wt: &[f64],
    in_dim: usize,
    out_dim: usize,
    xs: &[f64],
    b0: usize,
    j0: usize,
) -> [[f64; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: `available()` verified AVX2; bounds match this
        // function's contract (full tile at `(b0, j0)`).
        return unsafe { x86::forward_tile(wt, in_dim, out_dim, xs, b0, j0) };
    }
    let mut acc = [[0.0f64; NR]; MR];
    for k in 0..in_dim {
        let wt_row = &wt[k * out_dim + j0..k * out_dim + j0 + NR];
        for (bi, acc_row) in acc.iter_mut().enumerate() {
            let xk = xs[(b0 + bi) * in_dim + k];
            for (a, &w) in acc_row.iter_mut().zip(wt_row) {
                *a += w * xk;
            }
        }
    }
    acc
}

/// Mini-batch forward pass: `out[b,o] = act(Σ_k xs[b,k]·wt[k,o] + b[o])`
/// with the sum over `k` ascending from `0.0` — bit-identical to
/// [`Dense::forward`](crate::nn::Dense::forward) on each row.
///
/// `wt` is the transposed weight matrix from [`pack_transpose`]. Returns
/// the multiply-add FLOP count (`2·batch·in_dim·out_dim`).
#[allow(clippy::too_many_arguments)]
pub fn forward_packed(
    wt: &[f64],
    biases: &[f64],
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
    xs: &[f64],
    batch: usize,
    out: &mut [f64],
) -> u64 {
    debug_assert_eq!(xs.len(), batch * in_dim);
    debug_assert_eq!(out.len(), batch * out_dim);
    debug_assert_eq!(wt.len(), in_dim * out_dim);
    for b0 in (0..batch).step_by(MR) {
        let mb = (batch - b0).min(MR);
        for j0 in (0..out_dim).step_by(NR) {
            let nj = (out_dim - j0).min(NR);
            if mb == MR && nj == NR {
                // Full tile: MR × NR partial sums stay in registers
                // across the whole k loop.
                let acc = forward_tile(wt, in_dim, out_dim, xs, b0, j0);
                for (bi, acc_row) in acc.iter().enumerate() {
                    let out_row = &mut out[(b0 + bi) * out_dim + j0..];
                    for (j, &a) in acc_row.iter().enumerate() {
                        out_row[j] = activation.apply(a + biases[j0 + j]);
                    }
                }
            } else {
                // Ragged edge: same k-ascending order, one dot at a time.
                for bi in 0..mb {
                    let x_row = &xs[(b0 + bi) * in_dim..(b0 + bi + 1) * in_dim];
                    for j in j0..j0 + nj {
                        let mut a = 0.0;
                        for (k, &xk) in x_row.iter().enumerate() {
                            a += wt[k * out_dim + j] * xk;
                        }
                        out[(b0 + bi) * out_dim + j] = activation.apply(a + biases[j]);
                    }
                }
            }
        }
    }
    2 * (batch * in_dim * out_dim) as u64
}

/// Output-layer error for MSE loss: `δ[b,o] = (y[b,o] − t[b,o])·act'(y)`.
pub fn output_delta(outputs: &[f64], targets: &[f64], activation: Activation, deltas: &mut [f64]) {
    debug_assert_eq!(outputs.len(), targets.len());
    debug_assert_eq!(outputs.len(), deltas.len());
    for ((d, &y), &t) in deltas.iter_mut().zip(outputs).zip(targets) {
        *d = (y - t) * activation.derivative_from_output(y);
    }
}

/// One full backprop register tile, portable path:
/// `acc[bi][i] = Σ_o weights[o, i0+i]·deltas[b0+bi, o]`.
#[inline]
fn input_grad_tile(
    weights: &[f64],
    in_dim: usize,
    out_dim: usize,
    deltas: &[f64],
    b0: usize,
    i0: usize,
) -> [[f64; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: `available()` verified AVX2; bounds match this
        // function's contract (full tile at `(b0, i0)`).
        return unsafe { x86::input_grad_tile(weights, in_dim, out_dim, deltas, b0, i0) };
    }
    let mut acc = [[0.0f64; NR]; MR];
    for o in 0..out_dim {
        let w_row = &weights[o * in_dim + i0..o * in_dim + i0 + NR];
        for (bi, acc_row) in acc.iter_mut().enumerate() {
            let d = deltas[(b0 + bi) * out_dim + o];
            for (a, &w) in acc_row.iter_mut().zip(w_row) {
                *a += w * d;
            }
        }
    }
    acc
}

/// Back-propagates the error through a layer:
/// `pd[b,i] = (Σ_o weights[o,i]·deltas[b,o]) · act'(act_in[b,i])`
/// with the sum over `o` ascending — the scalar recurrence's order.
///
/// `activation` and `act_in` belong to the *previous* layer (whose
/// outputs feed this one). Returns the multiply-add FLOP count.
#[allow(clippy::too_many_arguments)]
pub fn input_grad(
    weights: &[f64],
    in_dim: usize,
    out_dim: usize,
    deltas: &[f64],
    batch: usize,
    activation: Activation,
    act_in: &[f64],
    pd: &mut [f64],
) -> u64 {
    debug_assert_eq!(deltas.len(), batch * out_dim);
    debug_assert_eq!(act_in.len(), batch * in_dim);
    debug_assert_eq!(pd.len(), batch * in_dim);
    for b0 in (0..batch).step_by(MR) {
        let mb = (batch - b0).min(MR);
        for i0 in (0..in_dim).step_by(NR) {
            let ni = (in_dim - i0).min(NR);
            if mb == MR && ni == NR {
                // Full tile: MR × NR partials in registers across the
                // whole o loop.
                let acc = input_grad_tile(weights, in_dim, out_dim, deltas, b0, i0);
                for (bi, acc_row) in acc.iter().enumerate() {
                    let row = (b0 + bi) * in_dim + i0;
                    for (i, &a) in acc_row.iter().enumerate() {
                        pd[row + i] = a * activation.derivative_from_output(act_in[row + i]);
                    }
                }
            } else {
                // Ragged edge: same o-ascending order, one sum at a time.
                for bi in 0..mb {
                    let d_row = &deltas[(b0 + bi) * out_dim..(b0 + bi + 1) * out_dim];
                    for i in i0..i0 + ni {
                        let mut a = 0.0;
                        for (o, &d) in d_row.iter().enumerate() {
                            a += weights[o * in_dim + i] * d;
                        }
                        let at = (b0 + bi) * in_dim + i;
                        pd[at] = a * activation.derivative_from_output(act_in[at]);
                    }
                }
            }
        }
    }
    2 * (batch * in_dim * out_dim) as u64
}

/// One full gradient register tile, portable path: folds
/// `Σ_b deltas[b, o0+oi]·xs[b, i0+i]` into the `gw` block at `(o0, i0)`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn accumulate_tile(
    deltas: &[f64],
    xs: &[f64],
    batch: usize,
    in_dim: usize,
    out_dim: usize,
    gw: &mut [f64],
    o0: usize,
    i0: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: `available()` verified AVX2; bounds match this
        // function's contract (full tile at `(o0, i0)`).
        unsafe { x86::accumulate_tile(deltas, xs, batch, in_dim, out_dim, gw, o0, i0) };
        return;
    }
    let mut acc = [[0.0f64; NR]; MR];
    for (oi, acc_row) in acc.iter_mut().enumerate() {
        let gw_row = &gw[(o0 + oi) * in_dim + i0..(o0 + oi) * in_dim + i0 + NR];
        acc_row.copy_from_slice(gw_row);
    }
    for b in 0..batch {
        let x_row = &xs[b * in_dim + i0..b * in_dim + i0 + NR];
        for (oi, acc_row) in acc.iter_mut().enumerate() {
            let d = deltas[b * out_dim + o0 + oi];
            for (g, &x) in acc_row.iter_mut().zip(x_row) {
                *g += d * x;
            }
        }
    }
    for (oi, acc_row) in acc.iter().enumerate() {
        gw[(o0 + oi) * in_dim + i0..(o0 + oi) * in_dim + i0 + NR].copy_from_slice(acc_row);
    }
}

/// Accumulates one chunk's layer gradients:
/// `gw[o,i] += Σ_b deltas[b,o]·xs[b,i]`, `gb[o] += Σ_b deltas[b,o]`,
/// with the sum over `b` ascending. The caller zeroes `gw`/`gb` once per
/// chunk; chunk partials are then combined by [`tree_reduce`]. Returns
/// the multiply-add FLOP count.
pub fn accumulate_grads(
    deltas: &[f64],
    xs: &[f64],
    batch: usize,
    in_dim: usize,
    out_dim: usize,
    gw: &mut [f64],
    gb: &mut [f64],
) -> u64 {
    debug_assert_eq!(deltas.len(), batch * out_dim);
    debug_assert_eq!(xs.len(), batch * in_dim);
    debug_assert_eq!(gw.len(), in_dim * out_dim);
    debug_assert_eq!(gb.len(), out_dim);
    for o0 in (0..out_dim).step_by(MR) {
        let mo = (out_dim - o0).min(MR);
        for i0 in (0..in_dim).step_by(NR) {
            let ni = (in_dim - i0).min(NR);
            if mo == MR && ni == NR {
                // Full tile: the MR × NR gradient block rides registers
                // across the whole sample loop.
                accumulate_tile(deltas, xs, batch, in_dim, out_dim, gw, o0, i0);
            } else {
                // Ragged edge: same b-ascending order, one element at a time.
                for oi in 0..mo {
                    for i in i0..i0 + ni {
                        let mut g = gw[(o0 + oi) * in_dim + i];
                        for b in 0..batch {
                            g += deltas[b * out_dim + o0 + oi] * xs[b * in_dim + i];
                        }
                        gw[(o0 + oi) * in_dim + i] = g;
                    }
                }
            }
        }
    }
    for b in 0..batch {
        let d_row = &deltas[b * out_dim..(b + 1) * out_dim];
        for (g, &d) in gb.iter_mut().zip(d_row) {
            *g += d;
        }
    }
    2 * (batch * in_dim * out_dim) as u64
}

/// Pairwise stride-doubling reduction: folds `items[i + stride]` into
/// `items[i]` for `stride = 1, 2, 4, …`, leaving the total in
/// `items[0]`. The combine order is a pure function of `items.len()` —
/// never of the thread count that produced the items — which is the
/// second half of the trainer's determinism argument (the first half is
/// the fixed [`GRAD_CHUNK`] partition).
pub fn tree_reduce<T>(items: &mut [T], add: impl Fn(&mut T, &T)) {
    let n = items.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let (head, tail) = items.split_at_mut(i + stride);
            add(&mut head[i], &tail[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// Elementwise `dst[i] += src[i]` — the [`tree_reduce`] combine for
/// gradient buffers. Per-element and order-free, so the lane-widened
/// path is bitwise identical to the scalar loop.
pub fn vec_add(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: `available()` verified AVX2; lengths are equal.
        done = unsafe { x86::vec_add(dst, src) };
    }
    for (d, &s) in dst[done..].iter_mut().zip(&src[done..]) {
        *d += s;
    }
}

/// The classical-momentum SGD step over one flat parameter buffer:
///
/// ```text
/// g = grads[i] / scale
/// velocity[i] = momentum·velocity[i] − learning_rate·g
/// params[i]  += velocity[i]
/// ```
///
/// Every element is independent and each operation is a single IEEE
/// `div`/`mul`/`sub`/`add`, so the lane-widened path is bitwise identical
/// to the scalar loop (the division by the batch length is kept as a
/// division — multiplying by a reciprocal would round differently).
pub fn sgd_update(
    params: &mut [f64],
    velocity: &mut [f64],
    grads: &[f64],
    scale: f64,
    momentum: f64,
    learning_rate: f64,
) {
    debug_assert_eq!(params.len(), velocity.len());
    debug_assert_eq!(params.len(), grads.len());
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: `available()` verified AVX2; lengths are equal.
        done = unsafe { x86::sgd_update(params, velocity, grads, scale, momentum, learning_rate) };
    }
    for i in done..params.len() {
        let g = grads[i] / scale;
        velocity[i] = momentum * velocity[i] - learning_rate * g;
        params[i] += velocity[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Dense, Network};
    use velopt_common::rng::SplitMix64;

    #[test]
    fn pack_transpose_round_trips() {
        let w: Vec<f64> = (0..12).map(|i| i as f64).collect(); // 3 out × 4 in
        let mut packed = vec![0.0; 12];
        pack_transpose(&w, 4, 3, &mut packed);
        for o in 0..3 {
            for k in 0..4 {
                assert_eq!(packed[k * 3 + o], w[o * 4 + k]);
            }
        }
    }

    #[test]
    fn forward_packed_matches_scalar_bitwise() {
        let mut rng = SplitMix64::new(17);
        for (in_dim, out_dim, batch) in [(5, 3, 1), (33, 24, 16), (7, 1, 11), (24, 12, 9)] {
            for activation in [Activation::Sigmoid, Activation::Linear] {
                let layer = Dense::random(in_dim, out_dim, activation, &mut rng);
                let xs: Vec<f64> = (0..batch * in_dim)
                    .map(|_| rng.uniform(-2.0, 2.0))
                    .collect();
                let mut packed = vec![0.0; in_dim * out_dim];
                pack_transpose(layer.weights(), in_dim, out_dim, &mut packed);
                let mut out = vec![0.0; batch * out_dim];
                forward_packed(
                    &packed,
                    layer.biases(),
                    activation,
                    in_dim,
                    out_dim,
                    &xs,
                    batch,
                    &mut out,
                );
                for b in 0..batch {
                    let scalar = layer.forward(&xs[b * in_dim..(b + 1) * in_dim]);
                    for o in 0..out_dim {
                        assert_eq!(
                            out[b * out_dim + o].to_bits(),
                            scalar[o].to_bits(),
                            "row {b} col {o} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn input_grad_matches_scalar_recurrence() {
        let mut rng = SplitMix64::new(5);
        let (in_dim, out_dim, batch) = (6, 4, 3);
        let layer = Dense::random(in_dim, out_dim, Activation::Linear, &mut rng);
        let deltas: Vec<f64> = (0..batch * out_dim)
            .map(|_| rng.uniform(-1.0, 1.0))
            .collect();
        let act_in: Vec<f64> = (0..batch * in_dim).map(|_| rng.uniform(0.1, 0.9)).collect();
        let mut pd = vec![1.0; batch * in_dim]; // nonzero: the kernel must clear it
        input_grad(
            layer.weights(),
            in_dim,
            out_dim,
            &deltas,
            batch,
            Activation::Sigmoid,
            &act_in,
            &mut pd,
        );
        for b in 0..batch {
            for i in 0..in_dim {
                let mut expect = 0.0;
                for o in 0..out_dim {
                    expect += layer.weights()[o * in_dim + i] * deltas[b * out_dim + o];
                }
                let a = act_in[b * in_dim + i];
                expect *= Activation::Sigmoid.derivative_from_output(a);
                assert_eq!(pd[b * in_dim + i].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn accumulate_grads_sums_samples_in_order() {
        let (in_dim, out_dim, batch) = (3, 2, 4);
        let deltas: Vec<f64> = (0..batch * out_dim).map(|i| 0.1 * i as f64).collect();
        let xs: Vec<f64> = (0..batch * in_dim).map(|i| 1.0 + i as f64).collect();
        let mut gw = vec![0.0; in_dim * out_dim];
        let mut gb = vec![0.0; out_dim];
        accumulate_grads(&deltas, &xs, batch, in_dim, out_dim, &mut gw, &mut gb);
        for o in 0..out_dim {
            for i in 0..in_dim {
                let mut expect = 0.0;
                for b in 0..batch {
                    expect += deltas[b * out_dim + o] * xs[b * in_dim + i];
                }
                assert_eq!(gw[o * in_dim + i].to_bits(), expect.to_bits());
            }
            let expect: f64 = (0..batch).map(|b| deltas[b * out_dim + o]).sum();
            assert_eq!(gb[o].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn tree_reduce_covers_every_item_once() {
        for n in 1..=17usize {
            let mut items: Vec<u64> = (0..n as u64).map(|i| 1 << i).collect();
            tree_reduce(&mut items, |a, b| *a += *b);
            assert_eq!(items[0], (1u64 << n) - 1, "n={n}");
        }
    }

    #[test]
    fn tree_reduce_order_is_fixed() {
        // Record the combine sequence as strings: it must depend only on n.
        let n = 11;
        let mut items: Vec<String> = (0..n).map(|i| i.to_string()).collect();
        tree_reduce(&mut items, |a, b| *a = format!("({a}+{b})"));
        assert_eq!(
            items[0], "((((0+1)+(2+3))+((4+5)+(6+7)))+((8+9)+10))",
            "the reduction tree is a pure function of the item count"
        );
    }

    #[test]
    fn network_forward_batch_uses_these_kernels_consistently() {
        // End-to-end smoke: a 2-layer net through the batch path equals
        // per-sample scalar forwards bitwise (the full property test
        // lives in tests/properties.rs).
        let mut rng = SplitMix64::new(9);
        let net = Network::new(vec![
            Dense::random(4, 5, Activation::Sigmoid, &mut rng),
            Dense::random(5, 2, Activation::Linear, &mut rng),
        ]);
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|_| (0..4).map(|_| rng.uniform(-1.0, 1.0)).collect())
            .collect();
        let refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let batched = net.forward_batch(&refs);
        for (x, row) in refs.iter().zip(&batched) {
            let scalar = net.forward(x);
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
