//! Batched multi-horizon volume forecasting.
//!
//! The replanning loop of §II-C needs the arrival rate at *every*
//! lookahead horizon for every intersection still ahead of the vehicle —
//! and the cloud service needs the same answer for many vehicles at once.
//! [`VolumePredictor`] answers those queries in one batched pass per
//! horizon step: at each step it assembles the feature rows for all N
//! queries and pushes them through the SAE's gemm-backed
//! [`Sae::predict_batch_into`] in a single call, then feeds each
//! prediction back into its query's lag window (recursive rollout).
//!
//! With a caller-owned [`VolumeScratch`] the whole rollout is
//! allocation-free in steady state, and each predicted value is
//! bit-identical to what [`SaePredictor::predict_next`] would produce by
//! rolling one query at a time.
//!
//! [`Sae::predict_batch_into`]: crate::Sae::predict_batch_into

use crate::arena::BatchScratch;
use crate::predictor::{
    decode, features_into, SaePredictor, SaePredictorConfig, CALENDAR_FEATURES,
};
use crate::volume::HourlyVolume;
use serde::{Deserialize, Serialize};
use velopt_common::units::VehiclesPerHour;
use velopt_common::{Error, Result};

/// One forecasting request: a lag window of raw hourly volumes and the
/// global hour index of the *first* hour to predict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeQuery {
    /// The `lags` most recent hourly volumes, oldest first.
    pub history: Vec<f64>,
    /// Global hour index (hour 0 = Monday 00:00) of the first forecast
    /// hour; step `s` of the rollout predicts hour `hour_index + s`.
    pub hour_index: usize,
}

/// Reusable scratch for [`VolumePredictor::predict_batch_with`].
///
/// Holds the rolling lag windows, the flat feature plane, and the SAE's
/// [`BatchScratch`]; once warm (same predictor, query count no larger
/// than the high-water mark), a rollout allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct VolumeScratch {
    /// Flat `n × lags` rolling windows, one row per query.
    windows: Vec<f64>,
    /// Flat `n × (lags + calendar)` feature rows for one horizon step.
    feats: Vec<f64>,
    /// One query's feature row (reused; `features_into` clears it).
    feat_tmp: Vec<f64>,
    /// The batched-forward scratch shared across steps.
    batch: BatchScratch,
}

impl VolumeScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batched-forward geometries served without allocating.
    pub fn reuse_hits(&self) -> u64 {
        self.batch.reuse_hits()
    }

    /// Batched-forward geometries that required fresh allocations.
    pub fn allocations(&self) -> u64 {
        self.batch.allocations()
    }

    /// Multiply-add FLOPs accumulated across all rollouts.
    pub fn flops(&self) -> u64 {
        self.batch.flops()
    }
}

/// Batched multi-horizon arrival-rate forecaster over a trained
/// [`SaePredictor`].
///
/// # Examples
///
/// ```no_run
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_traffic::{
///     SaePredictorConfig, VolumeGenerator, VolumePredictor, VolumeQuery,
/// };
///
/// let feed = VolumeGenerator::us25_station(42).generate_weeks(14)?;
/// let vp = VolumePredictor::train(&feed, &SaePredictorConfig::default())?;
/// let lags = vp.predictor().lags();
/// let queries = vec![VolumeQuery {
///     history: feed.samples()[feed.len() - lags..].to_vec(),
///     hour_index: feed.len(),
/// }];
/// // Volumes for the next 4 hours at this intersection.
/// let forecast = vp.predict_batch(&queries, 4)?;
/// assert_eq!(forecast[0].len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumePredictor {
    predictor: SaePredictor,
}

impl VolumePredictor {
    /// Wraps an already-trained predictor.
    pub fn new(predictor: SaePredictor) -> Self {
        Self { predictor }
    }

    /// Trains the underlying [`SaePredictor`] on a feed.
    ///
    /// # Errors
    ///
    /// Propagates [`SaePredictor::train`] failures.
    pub fn train(feed: &HourlyVolume, cfg: &SaePredictorConfig) -> Result<Self> {
        Ok(Self::new(SaePredictor::train(feed, cfg)?))
    }

    /// The wrapped single-query predictor.
    pub fn predictor(&self) -> &SaePredictor {
        &self.predictor
    }

    /// Forecasts `horizons` consecutive hours for every query:
    /// `result[q][s]` is the predicted volume at `queries[q].hour_index + s`.
    ///
    /// Convenience wrapper over [`predict_batch_with`] that allocates its
    /// own scratch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any query's history length does
    /// not equal the predictor's lag count.
    ///
    /// [`predict_batch_with`]: VolumePredictor::predict_batch_with
    pub fn predict_batch(
        &self,
        queries: &[VolumeQuery],
        horizons: usize,
    ) -> Result<Vec<Vec<VehiclesPerHour>>> {
        let mut scratch = VolumeScratch::new();
        let mut flat = Vec::new();
        self.predict_batch_with(queries, horizons, &mut scratch, &mut flat)?;
        if horizons == 0 {
            return Ok(vec![Vec::new(); queries.len()]);
        }
        Ok(flat
            .chunks(horizons)
            .map(|row| row.iter().copied().map(VehiclesPerHour::new).collect())
            .collect())
    }

    /// [`predict_batch`] into caller-owned scratch and output: `out` is
    /// cleared and filled with `queries.len() × horizons` volumes in
    /// query-major order (`out[q * horizons + s]`). Once the scratch and
    /// `out` are warm, the rollout performs no allocations.
    ///
    /// Each horizon step runs *one* batched gemm forward over all
    /// queries; predictions are clamped at zero and fed back into the lag
    /// windows, so every value is bit-identical to a per-query
    /// [`SaePredictor::predict_next`] rollout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any query's history length does
    /// not equal the predictor's lag count.
    ///
    /// [`predict_batch`]: VolumePredictor::predict_batch
    pub fn predict_batch_with(
        &self,
        queries: &[VolumeQuery],
        horizons: usize,
        scratch: &mut VolumeScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let lags = self.predictor.lags();
        let n = queries.len();
        for (q, query) in queries.iter().enumerate() {
            if query.history.len() != lags {
                return Err(Error::invalid_input(format!(
                    "query {q}: history must contain exactly {lags} hours, got {}",
                    query.history.len()
                )));
            }
        }
        out.clear();
        if n == 0 || horizons == 0 {
            return Ok(());
        }
        out.resize(n * horizons, 0.0);

        scratch.windows.clear();
        for query in queries {
            scratch.windows.extend_from_slice(&query.history);
        }
        let feat_dim = lags + CALENDAR_FEATURES;
        scratch.feats.clear();
        scratch.feats.resize(n * feat_dim, 0.0);

        let scale = self.predictor.scale();
        for step in 0..horizons {
            for (q, query) in queries.iter().enumerate() {
                let window = &scratch.windows[q * lags..(q + 1) * lags];
                features_into(
                    window,
                    query.hour_index + step,
                    scale,
                    &mut scratch.feat_tmp,
                );
                scratch.feats[q * feat_dim..(q + 1) * feat_dim].copy_from_slice(&scratch.feat_tmp);
            }
            let plane =
                self.predictor
                    .sae()
                    .predict_batch_into(&scratch.feats, n, &mut scratch.batch);
            for q in 0..n {
                let volume = decode(plane[q], scale).max(0.0);
                out[q * horizons + step] = volume;
                let window = &mut scratch.windows[q * lags..(q + 1) * lags];
                window.rotate_left(1);
                window[lags - 1] = volume;
            }
        }
        telemetry::add("traffic.predict.batch_calls", 1);
        telemetry::add("traffic.predict.queries", n as u64);
        telemetry::add("traffic.predict.values", (n * horizons) as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sae::SaeConfig;
    use crate::volume::VolumeGenerator;

    fn quick_predictor(seed: u64) -> (VolumePredictor, HourlyVolume) {
        let feed = VolumeGenerator::us25_station(seed)
            .generate_weeks(2)
            .unwrap();
        let cfg = SaePredictorConfig {
            lags: 12,
            sae: SaeConfig {
                hidden_layers: vec![8],
                ..SaeConfig::default()
            },
        };
        (VolumePredictor::train(&feed, &cfg).unwrap(), feed)
    }

    fn tail_query(feed: &HourlyVolume, lags: usize) -> VolumeQuery {
        VolumeQuery {
            history: feed.samples()[feed.len() - lags..].to_vec(),
            hour_index: feed.len(),
        }
    }

    #[test]
    fn rejects_wrong_history_length() {
        let (vp, _) = quick_predictor(5);
        let bad = VolumeQuery {
            history: vec![10.0; 3],
            hour_index: 0,
        };
        assert!(vp.predict_batch(&[bad], 2).is_err());
    }

    #[test]
    fn empty_queries_and_zero_horizons_yield_empty_output() {
        let (vp, feed) = quick_predictor(6);
        let lags = vp.predictor().lags();
        assert!(vp.predict_batch(&[], 3).unwrap().is_empty());
        let q = tail_query(&feed, lags);
        let rows = vp.predict_batch(&[q], 0).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn batched_rollout_matches_sequential_predict_next_bitwise() {
        let (vp, feed) = quick_predictor(7);
        let lags = vp.predictor().lags();
        let queries = vec![
            tail_query(&feed, lags),
            VolumeQuery {
                history: feed.samples()[..lags].to_vec(),
                hour_index: lags,
            },
            VolumeQuery {
                history: feed.samples()[40..40 + lags].to_vec(),
                hour_index: 40 + lags,
            },
        ];
        let horizons = 5;
        let batched = vp.predict_batch(&queries, horizons).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let mut window = query.history.clone();
            for (s, predicted) in batched[q].iter().enumerate() {
                let single = vp
                    .predictor()
                    .predict_next(&window, query.hour_index + s)
                    .unwrap();
                assert_eq!(
                    predicted.value().to_bits(),
                    single.value().to_bits(),
                    "query {q} step {s}"
                );
                window.rotate_left(1);
                let last = window.len() - 1;
                window[last] = single.value();
            }
        }
    }

    #[test]
    fn scratch_rollouts_are_allocation_free_in_steady_state() {
        let (vp, feed) = quick_predictor(8);
        let lags = vp.predictor().lags();
        let queries: Vec<VolumeQuery> = (0..4)
            .map(|i| VolumeQuery {
                history: feed.samples()[i * 7..i * 7 + lags].to_vec(),
                hour_index: i * 7 + lags,
            })
            .collect();
        let mut scratch = VolumeScratch::new();
        let mut out = Vec::new();
        vp.predict_batch_with(&queries, 6, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), 24);
        let warm_allocs = scratch.allocations();
        assert!(scratch.flops() > 0);
        for _ in 0..10 {
            vp.predict_batch_with(&queries, 6, &mut scratch, &mut out)
                .unwrap();
        }
        assert_eq!(
            scratch.allocations(),
            warm_allocs,
            "steady-state rollouts must not allocate batch scratch"
        );
        assert!(scratch.reuse_hits() >= 60);
        assert!(out.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
