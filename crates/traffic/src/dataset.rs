//! CSV import/export for hourly volume feeds.
//!
//! The paper trained on South Carolina DoT hourly counts; users with access
//! to a real detector export can feed it in here instead of the synthetic
//! generator. The format is deliberately minimal: an optional header, then
//! one row per hour as `hour_index,volume` (or just `volume`), starting on
//! a Monday at 00:00 like every [`HourlyVolume`].

use crate::volume::HourlyVolume;
use std::io::{BufRead, BufReader, Read, Write};
use velopt_common::{Error, Result};

/// Reads an hourly volume feed from CSV.
///
/// Accepts `volume` or `hour,volume` rows; a first line that does not parse
/// as numbers is treated as a header. When an hour column is present, rows
/// must be consecutive from 0 (gaps would silently misalign the calendar
/// features, so they are rejected).
///
/// Pass `&mut` references freely: any `R: Read` works
/// (`read_csv(&mut file)?`).
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on malformed rows, non-consecutive hour
/// indices, or an empty file, and [`Error::Io`] on read failures.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_traffic::dataset::read_csv;
///
/// let csv = "hour,volume\n0,120.5\n1,98.0\n2,75.25\n";
/// let feed = read_csv(csv.as_bytes())?;
/// assert_eq!(feed.samples(), &[120.5, 98.0, 75.25]);
/// # Ok(())
/// # }
/// ```
pub fn read_csv<R: Read>(reader: R) -> Result<HourlyVolume> {
    let reader = BufReader::new(reader);
    let mut samples = Vec::new();
    let mut expected_hour = 0usize;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line.map_err(Error::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let parsed: Option<(Option<usize>, f64)> = match fields.as_slice() {
            [v] => v.parse::<f64>().ok().map(|x| (None, x)),
            [h, v] => match (h.parse::<usize>(), v.parse::<f64>()) {
                (Ok(h), Ok(v)) => Some((Some(h), v)),
                _ => None,
            },
            _ => None,
        };
        match parsed {
            Some((hour, volume)) => {
                if let Some(h) = hour {
                    if h != expected_hour {
                        return Err(Error::invalid_input(format!(
                            "line {}: hour {} out of order (expected {})",
                            line_no + 1,
                            h,
                            expected_hour
                        )));
                    }
                }
                samples.push(volume);
                expected_hour += 1;
            }
            None if line_no == 0 => { /* header */ }
            None => {
                return Err(Error::invalid_input(format!(
                    "line {}: cannot parse '{trimmed}'",
                    line_no + 1
                )))
            }
        }
    }
    HourlyVolume::new(samples)
}

/// Writes a feed as `hour,volume` CSV with a header.
///
/// # Errors
///
/// Returns [`Error::Io`] on write failures.
pub fn write_csv<W: Write>(feed: &HourlyVolume, mut writer: W) -> Result<()> {
    writeln!(writer, "hour,volume").map_err(Error::from)?;
    for (h, v) in feed.samples().iter().enumerate() {
        writeln!(writer, "{h},{v}").map_err(Error::from)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::VolumeGenerator;

    #[test]
    fn round_trip_preserves_feed() {
        let feed = VolumeGenerator::us25_station(5).generate_weeks(1).unwrap();
        let mut buf = Vec::new();
        write_csv(&feed, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, feed);
    }

    #[test]
    fn accepts_headerless_single_column() {
        let feed = read_csv("10.0\n20.0\n30.0\n".as_bytes()).unwrap();
        assert_eq!(feed.samples(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn skips_blank_lines() {
        let feed = read_csv("volume\n10\n\n20\n".as_bytes()).unwrap();
        assert_eq!(feed.len(), 2);
    }

    #[test]
    fn rejects_out_of_order_hours() {
        let err = read_csv("hour,volume\n0,10\n2,20\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn rejects_garbage_mid_file() {
        assert!(read_csv("volume\n10\nnot-a-number\n".as_bytes()).is_err());
        assert!(read_csv("header only\n".as_bytes()).is_err()); // empty feed
        assert!(read_csv("volume\n-5\n".as_bytes()).is_err()); // negative
    }
}
