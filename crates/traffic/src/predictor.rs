//! The arrival-rate predictor: SAE over lagged volume features.
//!
//! Given a history of hourly volumes, the predictor estimates the next
//! hour's volume `X(t + Δ)` from the previous [`SaePredictorConfig::lags`]
//! hours plus sinusoidal hour-of-day and day-of-week encodings — the
//! temporal+spatial framing of §II-B-1. Evaluation reports MRE and RMSE per
//! weekday, reproducing Fig. 4(b).

use crate::arena::InferenceScratch;
use crate::sae::{Sae, SaeConfig};
use crate::volume::{HourlyVolume, HOURS_PER_DAY};
use serde::{Deserialize, Serialize};
use velopt_common::stats;
use velopt_common::units::VehiclesPerHour;
use velopt_common::{Error, Result};

/// Configuration of the feature window and the underlying SAE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaePredictorConfig {
    /// Number of lagged hours fed as features.
    pub lags: usize,
    /// SAE hyper-parameters.
    pub sae: SaeConfig,
}

impl Default for SaePredictorConfig {
    fn default() -> Self {
        Self {
            lags: 24,
            sae: SaeConfig::default(),
        }
    }
}

/// MRE/RMSE for one weekday of the test week (a bar pair of Fig. 4b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayMetrics {
    /// Day of week, 0 = Monday.
    pub day_of_week: usize,
    /// Mean relative error as a fraction (paper reports < 0.10 every day).
    pub mre: f64,
    /// Root mean squared error in vehicles/hour.
    pub rmse: f64,
}

/// The result of evaluating a predictor on a test feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Metrics per weekday present in the test feed.
    pub per_day: Vec<DayMetrics>,
    /// Metrics over the whole test feed.
    pub overall: Metrics,
    /// Hour-aligned predictions (vehicles/hour).
    pub predictions: Vec<f64>,
    /// Hour-aligned ground truth (vehicles/hour).
    pub actuals: Vec<f64>,
}

/// A pair of the paper's evaluation metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Mean relative error (fraction).
    pub mre: f64,
    /// Root mean squared error (vehicles/hour).
    pub rmse: f64,
}

/// Reusable scratch for [`SaePredictor::predict_next_into`].
///
/// Holds the assembled feature vector and the network's ping-pong
/// activation buffers; once warm, repeated predictions through the same
/// predictor allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    features: Vec<f64>,
    inference: InferenceScratch,
}

impl PredictScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A trained arrival-rate predictor.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaePredictor {
    sae: Sae,
    lags: usize,
    scale: f64,
    /// The last `lags` training volumes, used to warm-start test prediction.
    history_tail: Vec<f64>,
}

impl SaePredictor {
    /// Trains a predictor on a training feed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the feed is shorter than
    /// `lags + 1` hours or the configuration is degenerate, and propagates
    /// SAE training failures.
    pub fn train(feed: &HourlyVolume, cfg: &SaePredictorConfig) -> Result<Self> {
        if cfg.lags == 0 {
            return Err(Error::invalid_input("predictor needs >= 1 lag feature"));
        }
        let samples = feed.samples();
        if samples.len() <= cfg.lags {
            return Err(Error::invalid_input(format!(
                "feed of {} hours too short for {} lags",
                samples.len(),
                cfg.lags
            )));
        }
        // Work in log space: MSE on log-volumes approximates relative error,
        // which is what the paper's MRE metric rewards (night hours with tiny
        // counts would otherwise dominate the relative error).
        let scale = (1.0 + feed.max_volume()).ln().max(1.0);

        let mut inputs: Vec<Vec<f64>> = Vec::with_capacity(samples.len() - cfg.lags);
        let mut targets: Vec<Vec<f64>> = Vec::with_capacity(samples.len() - cfg.lags);
        for t in cfg.lags..samples.len() {
            inputs.push(features(&samples[t - cfg.lags..t], t, scale));
            targets.push(vec![encode(samples[t], scale)]);
        }
        let input_refs: Vec<&[f64]> = inputs.iter().map(|x| x.as_slice()).collect();
        let target_refs: Vec<&[f64]> = targets.iter().map(|y| y.as_slice()).collect();
        let sae = Sae::train(&input_refs, &target_refs, &cfg.sae)?;

        Ok(Self {
            sae,
            lags: cfg.lags,
            scale,
            history_tail: samples[samples.len() - cfg.lags..].to_vec(),
        })
    }

    /// Number of lag features.
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// The trained SAE regressor behind this predictor.
    pub fn sae(&self) -> &Sae {
        &self.sae
    }

    /// Log-space normalization scale (shared with [`VolumePredictor`]).
    ///
    /// [`VolumePredictor`]: crate::VolumePredictor
    pub(crate) fn scale(&self) -> f64 {
        self.scale
    }

    /// Predicts the volume at global hour index `hour_index` given the
    /// `lags` preceding volumes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `history.len() != lags`.
    pub fn predict_next(&self, history: &[f64], hour_index: usize) -> Result<VehiclesPerHour> {
        self.predict_next_into(history, hour_index, &mut PredictScratch::new())
    }

    /// [`predict_next`] with caller-owned scratch: once the scratch is
    /// warm, repeated calls allocate nothing. Bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `history.len() != lags`.
    ///
    /// [`predict_next`]: SaePredictor::predict_next
    pub fn predict_next_into(
        &self,
        history: &[f64],
        hour_index: usize,
        scratch: &mut PredictScratch,
    ) -> Result<VehiclesPerHour> {
        if history.len() != self.lags {
            return Err(Error::invalid_input(format!(
                "history must contain exactly {} hours, got {}",
                self.lags,
                history.len()
            )));
        }
        features_into(history, hour_index, self.scale, &mut scratch.features);
        let out = self
            .sae
            .predict_into(&scratch.features, &mut scratch.inference);
        let y = decode(out[0], self.scale);
        Ok(VehiclesPerHour::new(y.max(0.0)))
    }

    /// Evaluates the predictor on a test feed that begins right after the
    /// training feed (the stored training tail warm-starts the lag window,
    /// so every test hour is predicted).
    ///
    /// # Errors
    ///
    /// Propagates metric computation failures (e.g. an all-zero test feed).
    pub fn evaluate(&self, test: &HourlyVolume) -> Result<EvaluationReport> {
        // Global hour index of the first test hour: the training feed ended
        // `lags` hours after the tail started, and feeds always start on
        // Monday 00:00, so week alignment is preserved by using the test
        // feed's own indexing.
        let mut window: Vec<f64> = self.history_tail.clone();
        let mut scratch = PredictScratch::new();
        let mut predictions = Vec::with_capacity(test.len());
        for (t, &actual) in test.samples().iter().enumerate() {
            let p = self.predict_next_into(&window, t, &mut scratch)?;
            predictions.push(p.value());
            window.rotate_left(1);
            let last = window.len() - 1;
            window[last] = actual;
        }
        let actuals = test.samples().to_vec();

        let mut per_day = Vec::new();
        for day in 0..7 {
            let idx: Vec<usize> = (0..test.len())
                .filter(|&t| HourlyVolume::day_of_week(t) == day)
                .collect();
            if idx.is_empty() {
                continue;
            }
            let p: Vec<f64> = idx.iter().map(|&t| predictions[t]).collect();
            let a: Vec<f64> = idx.iter().map(|&t| actuals[t]).collect();
            per_day.push(DayMetrics {
                day_of_week: day,
                mre: stats::mre(&p, &a)?,
                rmse: stats::rmse(&p, &a)?,
            });
        }
        let overall = Metrics {
            mre: stats::mre(&predictions, &actuals)?,
            rmse: stats::rmse(&predictions, &actuals)?,
        };
        Ok(EvaluationReport {
            per_day,
            overall,
            predictions,
            actuals,
        })
    }
}

/// Extra calendar features appended after the lag window.
pub(crate) const CALENDAR_FEATURES: usize = 9;

/// Normalized log-volume encoding.
pub(crate) fn encode(volume: f64, scale: f64) -> f64 {
    (1.0 + volume.max(0.0)).ln() / scale
}

/// Inverse of [`encode`].
pub(crate) fn decode(y: f64, scale: f64) -> f64 {
    (y * scale).exp() - 1.0
}

/// Builds the feature vector: normalized log lags + calendar encodings.
fn features(lags: &[f64], hour_index: usize, scale: f64) -> Vec<f64> {
    let mut x = Vec::with_capacity(lags.len() + CALENDAR_FEATURES);
    features_into(lags, hour_index, scale, &mut x);
    x
}

/// [`features`] into a caller buffer (cleared first; reuses its capacity).
///
/// Hour-of-day uses three sinusoidal harmonics (the daily profile has sharp
/// commuter peaks that a single harmonic cannot express), day-of-week uses
/// one harmonic plus an explicit weekend flag.
pub(crate) fn features_into(lags: &[f64], hour_index: usize, scale: f64, x: &mut Vec<f64>) {
    x.clear();
    x.extend(lags.iter().map(|&v| encode(v, scale)));
    let hod = HourlyVolume::hour_of_day(hour_index) as f64 / HOURS_PER_DAY as f64;
    let dow = HourlyVolume::day_of_week(hour_index);
    for k in 1..=3 {
        x.push((std::f64::consts::TAU * hod * k as f64).sin());
        x.push((std::f64::consts::TAU * hod * k as f64).cos());
    }
    x.push((std::f64::consts::TAU * dow as f64 / 7.0).sin());
    x.push((std::f64::consts::TAU * dow as f64 / 7.0).cos());
    x.push(if dow >= 5 { 1.0 } else { 0.0 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::VolumeGenerator;

    fn quick_cfg() -> SaePredictorConfig {
        // Small but real training, sized to keep the unit-test suite fast.
        SaePredictorConfig {
            lags: 24,
            sae: SaeConfig {
                hidden_layers: vec![16],
                ..SaeConfig::default()
            },
        }
    }

    #[test]
    fn rejects_short_feed_and_zero_lags() {
        let feed = HourlyVolume::new(vec![10.0; 10]).unwrap();
        assert!(SaePredictor::train(&feed, &quick_cfg()).is_err());
        let cfg = SaePredictorConfig {
            lags: 0,
            ..quick_cfg()
        };
        let feed = VolumeGenerator::us25_station(0).generate_weeks(1).unwrap();
        assert!(SaePredictor::train(&feed, &cfg).is_err());
    }

    #[test]
    fn predict_next_validates_history_length() {
        let feed = VolumeGenerator::us25_station(1).generate_weeks(2).unwrap();
        let p = SaePredictor::train(&feed, &quick_cfg()).unwrap();
        assert!(p.predict_next(&[1.0; 3], 0).is_err());
        assert!(p.predict_next(&[100.0; 24], 0).is_ok());
    }

    #[test]
    fn learns_periodic_feed_to_paper_accuracy() {
        // 5 weeks train / 1 week test with mild noise: the SAE must hit the
        // paper's "< 10% MRE" bar. (The full 13-week run lives in the
        // integration tests and the fig4 harness.)
        let feed = VolumeGenerator::us25_station(42).generate_weeks(6).unwrap();
        let (train, test) = feed.split_at_week(5).unwrap();
        let p = SaePredictor::train(&train, &quick_cfg()).unwrap();
        let report = p.evaluate(&test).unwrap();
        assert_eq!(report.per_day.len(), 7);
        assert_eq!(report.predictions.len(), test.len());
        assert!(
            report.overall.mre < 0.10,
            "overall MRE {} should be < 10%",
            report.overall.mre
        );
        assert!(report.overall.rmse < 80.0, "rmse {}", report.overall.rmse);
    }

    #[test]
    fn per_day_metrics_cover_monday_to_sunday() {
        let feed = VolumeGenerator::us25_station(7).generate_weeks(3).unwrap();
        let (train, test) = feed.split_at_week(2).unwrap();
        let p = SaePredictor::train(&train, &quick_cfg()).unwrap();
        let report = p.evaluate(&test).unwrap();
        let days: Vec<usize> = report.per_day.iter().map(|d| d.day_of_week).collect();
        assert_eq!(days, vec![0, 1, 2, 3, 4, 5, 6]);
        for d in &report.per_day {
            assert!(d.mre >= 0.0 && d.rmse >= 0.0);
        }
    }

    #[test]
    fn features_include_time_encodings() {
        let scale = (201.0f64).ln();
        let x = features(&[100.0, 200.0], 13, scale);
        assert_eq!(x.len(), 11);
        assert!((x[0] - (101.0f64).ln() / scale).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        // Hour 13 of day 0 (a weekday).
        let hod = 13.0 / 24.0;
        assert!((x[2] - (std::f64::consts::TAU * hod).sin()).abs() < 1e-12);
        assert_eq!(x[10], 0.0);
        // Saturday hour index: day 5, hour 13.
        let sat = features(&[100.0, 200.0], 5 * 24 + 13, scale);
        assert_eq!(sat[10], 1.0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let scale = (500.0f64).ln();
        for v in [0.0, 1.0, 42.0, 499.0] {
            let back = decode(encode(v, scale), scale);
            assert!((back - v).abs() < 1e-9, "{v} -> {back}");
        }
    }
}
