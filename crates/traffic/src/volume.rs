//! Synthetic hourly traffic-volume feed.
//!
//! A stand-in for the South Carolina DoT loop-detector station the paper
//! trained on (3 months of hourly counts on US-25). The generator composes:
//!
//! * a **weekday profile**: a low night floor, a 7–9 AM commuter peak and a
//!   larger 4–6 PM peak,
//! * a **weekend profile**: one broad midday hump at lower volume,
//! * slow week-over-week drift (seasonality),
//! * multiplicative sensor noise,
//! * rare incident hours where the volume collapses (crashes, closures).
//!
//! Day 0 of every feed is a Monday, matching the paper's test week
//! (Mon Jun 6 – Sun Jun 12, 2016).

use serde::{Deserialize, Serialize};
use velopt_common::rng::SplitMix64;
use velopt_common::units::VehiclesPerHour;
use velopt_common::{Error, Result};

/// Hours in a day.
pub const HOURS_PER_DAY: usize = 24;
/// Hours in a week.
pub const HOURS_PER_WEEK: usize = 7 * HOURS_PER_DAY;

/// An hourly traffic-volume feed starting on a Monday at midnight.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_traffic::{HourlyVolume, VolumeGenerator};
///
/// let feed = VolumeGenerator::us25_station(7).generate_weeks(2)?;
/// assert_eq!(feed.len(), 2 * 7 * 24);
/// // Weekday rush hour beats 3 AM on the same day.
/// assert!(feed.at(0, 17)? > feed.at(0, 3)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlyVolume {
    samples: Vec<f64>,
}

impl HourlyVolume {
    /// Wraps raw hourly samples (index 0 = Monday 00:00–01:00).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if empty or any sample is negative or
    /// non-finite.
    pub fn new(samples: Vec<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(Error::invalid_input("volume feed must be non-empty"));
        }
        if samples.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(Error::invalid_input(
                "volume samples must be finite and non-negative",
            ));
        }
        Ok(Self { samples })
    }

    /// Raw samples in vehicles/hour.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of hourly samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the feed is empty (never true for a constructed feed).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Volume for `(day, hour)` with day 0 = the feed's first Monday.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDomain`] if the index is past the feed end and
    /// [`Error::InvalidInput`] if `hour >= 24`.
    pub fn at(&self, day: usize, hour: usize) -> Result<f64> {
        if hour >= HOURS_PER_DAY {
            return Err(Error::invalid_input("hour must be < 24"));
        }
        let idx = day * HOURS_PER_DAY + hour;
        self.samples
            .get(idx)
            .copied()
            .ok_or_else(|| Error::out_of_domain(format!("hour index {idx} past feed end")))
    }

    /// The flow rate at a global hour index.
    pub fn rate_at(&self, hour_index: usize) -> Result<VehiclesPerHour> {
        self.samples
            .get(hour_index)
            .map(|&v| VehiclesPerHour::new(v))
            .ok_or_else(|| Error::out_of_domain(format!("hour index {hour_index} past feed end")))
    }

    /// Day-of-week (0 = Monday) of a global hour index.
    pub fn day_of_week(hour_index: usize) -> usize {
        (hour_index / HOURS_PER_DAY) % 7
    }

    /// Hour-of-day of a global hour index.
    pub fn hour_of_day(hour_index: usize) -> usize {
        hour_index % HOURS_PER_DAY
    }

    /// Splits the feed into `[0, week)` and `[week, end)` portions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the cut would leave either side
    /// empty or fall past the end.
    pub fn split_at_week(&self, week: usize) -> Result<(HourlyVolume, HourlyVolume)> {
        let cut = week * HOURS_PER_WEEK;
        if cut == 0 || cut >= self.samples.len() {
            return Err(Error::invalid_input(format!(
                "cannot split {} samples at week {week}",
                self.samples.len()
            )));
        }
        Ok((
            HourlyVolume::new(self.samples[..cut].to_vec())?,
            HourlyVolume::new(self.samples[cut..].to_vec())?,
        ))
    }

    /// Largest sample in the feed (used for feature normalization).
    pub fn max_volume(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Configurable generator for synthetic [`HourlyVolume`] feeds.
///
/// All shape parameters are in vehicles/hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeGenerator {
    seed: u64,
    night_floor: f64,
    midday: f64,
    am_peak: f64,
    pm_peak: f64,
    weekend_scale: f64,
    noise_fraction: f64,
    incident_probability: f64,
    weekly_drift_fraction: f64,
}

impl VolumeGenerator {
    /// A generator shaped like the paper's US-25 station, where the probe
    /// measurement at 1 PM saw 153 veh/h headed straight through the second
    /// light (the total approach volume is higher; the straight-through
    /// fraction γ ≈ 0.76 is applied downstream by the queue model).
    pub fn us25_station(seed: u64) -> Self {
        Self {
            seed,
            night_floor: 40.0,
            midday: 220.0,
            am_peak: 520.0,
            pm_peak: 640.0,
            weekend_scale: 0.65,
            noise_fraction: 0.06,
            incident_probability: 0.004,
            weekly_drift_fraction: 0.03,
        }
    }

    /// Overrides the multiplicative sensor-noise fraction (σ of the noise).
    pub fn noise_fraction(mut self, f: f64) -> Self {
        self.noise_fraction = f;
        self
    }

    /// Overrides the per-hour incident probability.
    pub fn incident_probability(mut self, p: f64) -> Self {
        self.incident_probability = p;
        self
    }

    /// Deterministic noise-free shape for `(day_of_week, hour_of_day)`.
    ///
    /// Exposed so tests and docs can reason about the expected profile.
    pub fn base_shape(&self, day_of_week: usize, hour: usize) -> f64 {
        let h = hour as f64;
        let weekend = day_of_week >= 5;
        // Gaussian bumps centered on the commuter peaks.
        let bump = |center: f64, width: f64| (-((h - center) / width).powi(2)).exp();
        if weekend {
            let hump = bump(13.0, 4.5);
            self.weekend_scale * (self.night_floor + (self.midday + 150.0) * hump)
        } else {
            let am = self.am_peak * bump(8.0, 1.6);
            let pm = self.pm_peak * bump(17.0, 2.0);
            let day = self.midday * bump(13.0, 5.0);
            self.night_floor + am + pm + day
        }
    }

    /// Generates `weeks` whole weeks of hourly volume.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `weeks == 0`.
    pub fn generate_weeks(&self, weeks: usize) -> Result<HourlyVolume> {
        if weeks == 0 {
            return Err(Error::invalid_input("need at least one week"));
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut samples = Vec::with_capacity(weeks * HOURS_PER_WEEK);
        for week in 0..weeks {
            // Slow seasonal drift: a sinusoid over ~26 weeks.
            let drift = 1.0
                + self.weekly_drift_fraction * (std::f64::consts::TAU * week as f64 / 26.0).sin();
            for day in 0..7 {
                for hour in 0..HOURS_PER_DAY {
                    let base = self.base_shape(day, hour) * drift;
                    let noisy = base * (1.0 + self.noise_fraction * rng.normal());
                    let with_incident = if rng.chance(self.incident_probability) {
                        noisy * rng.uniform(0.3, 0.6)
                    } else {
                        noisy
                    };
                    samples.push(with_incident.max(0.0));
                }
            }
        }
        HourlyVolume::new(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = VolumeGenerator::us25_station(1).generate_weeks(2).unwrap();
        let b = VolumeGenerator::us25_station(1).generate_weeks(2).unwrap();
        assert_eq!(a, b);
        let c = VolumeGenerator::us25_station(2).generate_weeks(2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn shape_has_commuter_peaks_on_weekdays() {
        let g = VolumeGenerator::us25_station(0);
        let night = g.base_shape(2, 3);
        let am = g.base_shape(2, 8);
        let pm = g.base_shape(2, 17);
        assert!(am > 3.0 * night, "AM peak should dominate the night floor");
        assert!(pm > am, "PM peak is the daily maximum");
    }

    #[test]
    fn weekends_are_lighter() {
        let g = VolumeGenerator::us25_station(0);
        assert!(g.base_shape(6, 17) < g.base_shape(4, 17));
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let feed = VolumeGenerator::us25_station(9)
            .noise_fraction(0.5)
            .generate_weeks(4)
            .unwrap();
        assert!(feed.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn indexing_and_calendar_helpers() {
        let feed = VolumeGenerator::us25_station(3).generate_weeks(1).unwrap();
        assert_eq!(feed.len(), HOURS_PER_WEEK);
        assert!(feed.at(6, 23).is_ok());
        assert!(feed.at(7, 0).is_err());
        assert!(feed.at(0, 24).is_err());
        assert_eq!(HourlyVolume::day_of_week(0), 0);
        assert_eq!(HourlyVolume::day_of_week(25), 1);
        assert_eq!(HourlyVolume::day_of_week(HOURS_PER_WEEK), 0);
        assert_eq!(HourlyVolume::hour_of_day(25), 1);
    }

    #[test]
    fn split_at_week_partitions() {
        let feed = VolumeGenerator::us25_station(5).generate_weeks(3).unwrap();
        let (train, test) = feed.split_at_week(2).unwrap();
        assert_eq!(train.len(), 2 * HOURS_PER_WEEK);
        assert_eq!(test.len(), HOURS_PER_WEEK);
        assert!(feed.split_at_week(0).is_err());
        assert!(feed.split_at_week(3).is_err());
    }

    #[test]
    fn construction_rejects_bad_samples() {
        assert!(HourlyVolume::new(vec![]).is_err());
        assert!(HourlyVolume::new(vec![1.0, -2.0]).is_err());
        assert!(HourlyVolume::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn rate_at_returns_units() {
        let feed = HourlyVolume::new(vec![100.0, 200.0]).unwrap();
        assert_eq!(feed.rate_at(1).unwrap().value(), 200.0);
        assert!(feed.rate_at(2).is_err());
        assert_eq!(feed.max_volume(), 200.0);
    }
}
