//! Electric-vehicle energy-consumption model (paper §II-A).
//!
//! Implements the longitudinal-dynamics force model of Eq. (1), the
//! battery-referred energy expression of Eq. (2) and the instantaneous
//! electrical-charge consumption rate ζ of Eq. (3):
//!
//! ```text
//! F_drive = m·dv/dt + ½·ρ·A_f·C_d·v² + m·g·sinθ + μ·m·g·cosθ        (1)
//! E       = U·Q·η₁·η₂                                               (2)
//! ζ       = F_drive·v / (U·η₁·η₂)                                   (3)
//! ```
//!
//! where `m` is gross mass, `ρ` air density, `A_f` frontal area, `C_d` drag
//! coefficient, `θ` road grade, `μ` rolling resistance, `U` pack voltage and
//! `η₁`, `η₂` the battery and powertrain efficiencies. ζ is a *current*
//! (amperes); integrating it over a trip yields the ampere-hours that the
//! paper reports (Fig. 3 and Fig. 7 are in mAh).
//!
//! The crate provides:
//!
//! * [`VehicleParams`] — the physical constants, with a builder and a
//!   [`VehicleParams::spark_ev`] preset matching the paper's Chevrolet
//!   Spark EV setup,
//! * [`BatteryPack`] — series/parallel cell aggregation (the paper's 96-series
//!   pack of Sony VTC4 2.1 Ah cells: 46.2 Ah, 399 V) and state-of-charge
//!   tracking,
//! * [`EnergyModel`] — force/power/charge-rate queries plus charge
//!   integration along constant-acceleration segments and whole velocity
//!   profiles,
//! * [`map`] — the ζ(v, a) surface of Fig. 3.
//!
//! # Examples
//!
//! ```
//! use velopt_common::units::{MetersPerSecond, MetersPerSecondSq, Radians};
//! use velopt_ev_energy::{EnergyModel, VehicleParams};
//!
//! let model = EnergyModel::new(VehicleParams::spark_ev());
//! // Cruising at 15 m/s on a flat road draws a positive current...
//! let cruise = model.charge_rate(
//!     MetersPerSecond::new(15.0),
//!     MetersPerSecondSq::ZERO,
//!     Radians::ZERO,
//! );
//! assert!(cruise.value() > 0.0);
//! // ...while braking regenerates (negative rate), as in Fig. 3.
//! let braking = model.charge_rate(
//!     MetersPerSecond::new(15.0),
//!     MetersPerSecondSq::new(-1.5),
//!     Radians::ZERO,
//! );
//! assert!(braking.value() < 0.0);
//! ```

mod battery;
pub mod map;
mod model;
mod params;

pub use battery::{BatteryPack, PackConfig};
pub use model::{EnergyModel, GridSpec, RegenPolicy, SegmentEnergy};
pub use params::{VehicleParams, VehicleParamsBuilder};

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.81;

/// Average air density at sea level, kg/m³.
pub const AIR_DENSITY: f64 = 1.2041;
