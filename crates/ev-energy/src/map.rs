//! The ζ(v, a) consumption surface of Fig. 3.
//!
//! Fig. 3 plots the instantaneous charge-consumption rate of the Spark EV
//! over a speed × acceleration grid at zero grade, showing that consumption
//! grows steeply with acceleration and goes negative under deceleration
//! (regenerative braking). [`EnergyMap::generate`] reproduces that surface
//! for any [`EnergyModel`].

use crate::model::EnergyModel;
use serde::{Deserialize, Serialize};
use velopt_common::units::{KilometersPerHour, MetersPerSecondSq, Radians};
use velopt_common::{Error, Result};

/// A sampled consumption-rate surface over speed × acceleration.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_ev_energy::{map::EnergyMap, EnergyModel, VehicleParams};
///
/// let model = EnergyModel::new(VehicleParams::spark_ev());
/// let map = EnergyMap::generate(&model, 12, 8)?;
/// // Max consumption is at max speed + max acceleration ...
/// let peak = map.rate_at(11, 7);
/// // ... and braking at speed regenerates.
/// let regen = map.rate_at(11, 0);
/// assert!(peak > 0.0 && regen < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMap {
    speeds_kmh: Vec<f64>,
    accels: Vec<f64>,
    /// Row-major: `rates[speed_idx][accel_idx]`, in amperes.
    rates: Vec<Vec<f64>>,
}

impl EnergyMap {
    /// Paper axis limits: speed 0–120 km/h, acceleration −1.5 … +2.5 m/s².
    pub const SPEED_MAX_KMH: f64 = 120.0;
    /// Comfort/safety deceleration bound from §III-A-1.
    pub const ACCEL_MIN: f64 = -1.5;
    /// Comfort/safety acceleration bound from §III-A-1.
    pub const ACCEL_MAX: f64 = 2.5;

    /// Samples the surface on an `n_speeds × n_accels` grid at zero grade.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if either grid dimension is below 2.
    pub fn generate(model: &EnergyModel, n_speeds: usize, n_accels: usize) -> Result<Self> {
        if n_speeds < 2 || n_accels < 2 {
            return Err(Error::invalid_input("energy map grid must be >= 2x2"));
        }
        let speeds_kmh: Vec<f64> = (0..n_speeds)
            .map(|i| Self::SPEED_MAX_KMH * i as f64 / (n_speeds - 1) as f64)
            .collect();
        let accels: Vec<f64> = (0..n_accels)
            .map(|j| {
                Self::ACCEL_MIN
                    + (Self::ACCEL_MAX - Self::ACCEL_MIN) * j as f64 / (n_accels - 1) as f64
            })
            .collect();
        let rates = speeds_kmh
            .iter()
            .map(|&kmh| {
                let v = KilometersPerHour::new(kmh).to_meters_per_second();
                accels
                    .iter()
                    .map(|&a| {
                        model
                            .charge_rate(v, MetersPerSecondSq::new(a), Radians::ZERO)
                            .value()
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            speeds_kmh,
            accels,
            rates,
        })
    }

    /// The speed axis in km/h.
    pub fn speeds_kmh(&self) -> &[f64] {
        &self.speeds_kmh
    }

    /// The acceleration axis in m/s².
    pub fn accels(&self) -> &[f64] {
        &self.accels
    }

    /// Rate at grid cell `(speed_idx, accel_idx)` in amperes.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn rate_at(&self, speed_idx: usize, accel_idx: usize) -> f64 {
        self.rates[speed_idx][accel_idx]
    }

    /// Iterator over `(speed_kmh, accel, rate_amps)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.speeds_kmh.iter().enumerate().flat_map(move |(i, &v)| {
            self.accels
                .iter()
                .enumerate()
                .map(move |(j, &a)| (v, a, self.rates[i][j]))
        })
    }

    /// The largest rate on the surface.
    pub fn max_rate(&self) -> f64 {
        self.rates
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The smallest (most regenerative) rate on the surface.
    pub fn min_rate(&self) -> f64 {
        self.rates
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::VehicleParams;

    fn map() -> EnergyMap {
        let model = EnergyModel::new(VehicleParams::spark_ev());
        EnergyMap::generate(&model, 25, 17).unwrap()
    }

    #[test]
    fn rejects_degenerate_grids() {
        let model = EnergyModel::new(VehicleParams::spark_ev());
        assert!(EnergyMap::generate(&model, 1, 5).is_err());
        assert!(EnergyMap::generate(&model, 5, 1).is_err());
    }

    #[test]
    fn axes_cover_paper_ranges() {
        let m = map();
        assert_eq!(m.speeds_kmh().first(), Some(&0.0));
        assert_eq!(m.speeds_kmh().last(), Some(&120.0));
        assert_eq!(m.accels().first(), Some(&-1.5));
        assert_eq!(m.accels().last(), Some(&2.5));
    }

    #[test]
    fn rate_increases_with_acceleration_at_fixed_speed() {
        let m = map();
        let i = 12; // mid speed
        for j in 1..m.accels().len() {
            assert!(
                m.rate_at(i, j) > m.rate_at(i, j - 1),
                "rate should be monotone in acceleration"
            );
        }
    }

    #[test]
    fn regen_region_exists_and_peak_is_positive() {
        let m = map();
        assert!(m.min_rate() < 0.0, "Fig. 3 shows a negative regen region");
        assert!(m.max_rate() > 0.0);
        // The most regenerative point is at max speed, max deceleration.
        let last_speed = m.speeds_kmh().len() - 1;
        assert_eq!(m.rate_at(last_speed, 0), m.min_rate());
    }

    #[test]
    fn zero_speed_consumes_nothing() {
        // ζ = F·v/(Uη) is zero at v = 0 regardless of acceleration.
        let m = map();
        for j in 0..m.accels().len() {
            assert_eq!(m.rate_at(0, j), 0.0);
        }
    }

    #[test]
    fn iter_yields_full_grid() {
        let m = map();
        assert_eq!(m.iter().count(), 25 * 17);
    }
}
