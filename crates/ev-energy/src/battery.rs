//! Battery-pack aggregation and state-of-charge tracking.
//!
//! The paper's pack (§III-A-1) is built from Sony VTC4 18650 lithium-ion
//! cells (2.1 Ah rated capacity) with 96 cell groups in series, giving a pack
//! voltage of 399 V and total capacity of 46.2 Ah — i.e. 22 cells in
//! parallel per group (22 × 2.1 Ah = 46.2 Ah). The printed text loses digits
//! ("P X95S … 9 cells"); we anchor on the explicitly stated pack totals.

use serde::{Deserialize, Serialize};
use velopt_common::units::{AmpereHours, Volts};
use velopt_common::{Error, Result};

/// Cell-level configuration of a pack: `parallel`P `series`S of identical
/// cells.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{AmpereHours, Volts};
/// use velopt_ev_energy::PackConfig;
///
/// let cfg = PackConfig::new(22, 96, AmpereHours::new(2.1), Volts::new(4.15625))?;
/// let pack = cfg.build();
/// assert!((pack.capacity().value() - 46.2).abs() < 1e-9);
/// assert!((pack.voltage().value() - 399.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackConfig {
    parallel: u32,
    series: u32,
    cell_capacity: AmpereHours,
    cell_voltage: Volts,
}

impl PackConfig {
    /// Creates a pack configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if a count is zero or a cell rating is
    /// non-positive.
    pub fn new(
        parallel: u32,
        series: u32,
        cell_capacity: AmpereHours,
        cell_voltage: Volts,
    ) -> Result<Self> {
        if parallel == 0 || series == 0 {
            return Err(Error::invalid_input("pack needs >= 1 cell in each axis"));
        }
        if cell_capacity.value() <= 0.0 || cell_voltage.value() <= 0.0 {
            return Err(Error::invalid_input("cell ratings must be positive"));
        }
        Ok(Self {
            parallel,
            series,
            cell_capacity,
            cell_voltage,
        })
    }

    /// Total number of cells in the pack.
    pub fn cell_count(&self) -> u32 {
        self.parallel * self.series
    }

    /// Builds a fully-charged [`BatteryPack`] from this configuration.
    pub fn build(self) -> BatteryPack {
        BatteryPack {
            config: self,
            drawn: AmpereHours::ZERO,
        }
    }
}

/// A battery pack with state-of-charge tracking.
///
/// Charge drawn from the pack is accumulated in ampere-hours; regeneration
/// (negative draws) restores charge but can never exceed the rated capacity.
///
/// # Examples
///
/// ```
/// use velopt_common::units::AmpereHours;
/// use velopt_ev_energy::BatteryPack;
///
/// let mut pack = BatteryPack::spark_ev();
/// assert_eq!(pack.state_of_charge(), 1.0);
/// pack.draw(AmpereHours::new(4.62));
/// assert!((pack.state_of_charge() - 0.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryPack {
    config: PackConfig,
    drawn: AmpereHours,
}

impl BatteryPack {
    /// The paper's Spark EV pack: 22P96S of 2.1 Ah cells → 46.2 Ah @ 399 V.
    pub fn spark_ev() -> Self {
        PackConfig::new(22, 96, AmpereHours::new(2.1), Volts::new(399.0 / 96.0))
            .expect("spark pack constants are valid")
            .build()
    }

    /// The cell-level configuration.
    pub fn config(&self) -> PackConfig {
        self.config
    }

    /// Pack terminal voltage `U` (series cells).
    pub fn voltage(&self) -> Volts {
        Volts::new(self.config.cell_voltage.value() * self.config.series as f64)
    }

    /// Rated pack capacity (parallel cells).
    pub fn capacity(&self) -> AmpereHours {
        AmpereHours::new(self.config.cell_capacity.value() * self.config.parallel as f64)
    }

    /// Net charge drawn since full (negative if over-regenerated to full).
    pub fn drawn(&self) -> AmpereHours {
        self.drawn
    }

    /// Remaining charge.
    pub fn remaining(&self) -> AmpereHours {
        self.capacity() - self.drawn
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        ((self.capacity() - self.drawn) / self.capacity()).clamp(0.0, 1.0)
    }

    /// Draws charge from the pack (negative values regenerate).
    ///
    /// Regeneration saturates at full charge; draws may take the pack below
    /// empty (the caller can detect this via [`is_depleted`](Self::is_depleted)),
    /// mirroring how a trip plan is evaluated before being declared
    /// infeasible.
    pub fn draw(&mut self, charge: AmpereHours) {
        self.drawn += charge;
        if self.drawn.value() < 0.0 {
            self.drawn = AmpereHours::ZERO;
        }
    }

    /// Whether more charge has been drawn than the rated capacity.
    pub fn is_depleted(&self) -> bool {
        self.drawn.value() > self.capacity().value()
    }

    /// Resets the pack to full charge.
    pub fn reset(&mut self) {
        self.drawn = AmpereHours::ZERO;
    }

    /// The energy (in joules) corresponding to a given charge at pack
    /// voltage, per Eq. (2) with unit efficiencies.
    pub fn energy_of_charge(&self, charge: AmpereHours) -> f64 {
        charge.value() * 3600.0 * self.voltage().value()
    }

    /// Open-circuit voltage of the pack at a given state of charge.
    ///
    /// The per-cell curve is the canonical Li-ion shape — a steep knee
    /// below ~10% SoC, a long flat plateau, and a rise toward full charge —
    /// scaled so that 100% SoC matches the pack's rated
    /// [`voltage`](Self::voltage). Eq. (2)–(3) use the constant rated voltage (the
    /// paper's simplification); this curve quantifies the error of that
    /// simplification over a trip (see [`discharge_log`]).
    ///
    /// `soc` is clamped into `[0, 1]`.
    ///
    /// [`discharge_log`]: Self::discharge_log
    pub fn ocv_at(&self, soc: f64) -> Volts {
        // Normalized per-cell OCV knots (fraction of the full-charge OCV).
        const KNOTS: [(f64, f64); 6] = [
            (0.00, 0.714), // deep discharge knee (~3.0 V for a 4.2 V cell)
            (0.10, 0.857), // ~3.6 V
            (0.50, 0.881), // ~3.7 V plateau
            (0.80, 0.929), // ~3.9 V
            (0.95, 0.976), // ~4.1 V
            (1.00, 1.000),
        ];
        let soc = soc.clamp(0.0, 1.0);
        let full = self.voltage().value();
        let mut frac = KNOTS[KNOTS.len() - 1].1;
        for w in KNOTS.windows(2) {
            let ((s0, f0), (s1, f1)) = (w[0], w[1]);
            if soc <= s1 {
                let t = if s1 > s0 { (soc - s0) / (s1 - s0) } else { 1.0 };
                frac = f0 + t.clamp(0.0, 1.0) * (f1 - f0);
                break;
            }
        }
        Volts::new(full * frac)
    }

    /// Simulates a discharge: draws `charges` sequentially (one entry per
    /// trip segment) and records `(state of charge, open-circuit voltage)`
    /// after each draw.
    ///
    /// # Examples
    ///
    /// ```
    /// use velopt_common::units::AmpereHours;
    /// use velopt_ev_energy::BatteryPack;
    ///
    /// let pack = BatteryPack::spark_ev();
    /// let log = pack.discharge_log(&[AmpereHours::new(9.24); 4]);
    /// assert_eq!(log.len(), 4);
    /// assert!((log[3].0 - 0.2).abs() < 1e-9); // 80% drawn
    /// assert!(log[3].1 < log[0].1); // voltage sags as SoC falls
    /// ```
    pub fn discharge_log(&self, charges: &[AmpereHours]) -> Vec<(f64, Volts)> {
        let mut pack = self.clone();
        charges
            .iter()
            .map(|&q| {
                pack.draw(q);
                let soc = pack.state_of_charge();
                (soc, pack.ocv_at(soc))
            })
            .collect()
    }
}

impl Default for BatteryPack {
    fn default() -> Self {
        Self::spark_ev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_pack_totals_match_paper() {
        let pack = BatteryPack::spark_ev();
        assert!((pack.capacity().value() - 46.2).abs() < 1e-9);
        assert!((pack.voltage().value() - 399.0).abs() < 1e-9);
        assert_eq!(pack.config().cell_count(), 22 * 96);
    }

    #[test]
    fn config_validation() {
        assert!(PackConfig::new(0, 96, AmpereHours::new(2.1), Volts::new(4.2)).is_err());
        assert!(PackConfig::new(22, 0, AmpereHours::new(2.1), Volts::new(4.2)).is_err());
        assert!(PackConfig::new(22, 96, AmpereHours::ZERO, Volts::new(4.2)).is_err());
        assert!(PackConfig::new(22, 96, AmpereHours::new(2.1), Volts::new(-1.0)).is_err());
    }

    #[test]
    fn soc_decreases_with_draw() {
        let mut pack = BatteryPack::spark_ev();
        pack.draw(AmpereHours::new(23.1));
        assert!((pack.state_of_charge() - 0.5).abs() < 1e-9);
        assert!((pack.remaining().value() - 23.1).abs() < 1e-9);
        assert!(!pack.is_depleted());
    }

    #[test]
    fn regen_saturates_at_full() {
        let mut pack = BatteryPack::spark_ev();
        pack.draw(AmpereHours::new(-5.0));
        assert_eq!(pack.state_of_charge(), 1.0);
        assert_eq!(pack.drawn(), AmpereHours::ZERO);
    }

    #[test]
    fn depletion_detected() {
        let mut pack = BatteryPack::spark_ev();
        pack.draw(AmpereHours::new(50.0));
        assert!(pack.is_depleted());
        assert_eq!(pack.state_of_charge(), 0.0);
        pack.reset();
        assert_eq!(pack.state_of_charge(), 1.0);
    }

    #[test]
    fn ocv_curve_is_monotone_and_anchored() {
        let pack = BatteryPack::spark_ev();
        assert!((pack.ocv_at(1.0).value() - 399.0).abs() < 1e-9);
        let mut prev = pack.ocv_at(0.0);
        for i in 1..=20 {
            let v = pack.ocv_at(i as f64 / 20.0);
            assert!(v >= prev, "OCV must be monotone in SoC");
            prev = v;
        }
        // Deep-discharge knee: well below the plateau.
        assert!(pack.ocv_at(0.0).value() < 0.75 * 399.0);
        // Out-of-range SoC clamps.
        assert_eq!(pack.ocv_at(2.0), pack.ocv_at(1.0));
        assert_eq!(pack.ocv_at(-1.0), pack.ocv_at(0.0));
    }

    #[test]
    fn discharge_log_tracks_soc() {
        let pack = BatteryPack::spark_ev();
        let log = pack.discharge_log(&[AmpereHours::new(23.1), AmpereHours::new(23.1)]);
        assert!((log[0].0 - 0.5).abs() < 1e-9);
        assert!((log[1].0 - 0.0).abs() < 1e-9);
        assert!(log[1].1 < log[0].1);
        // Regenerative entries raise SoC (clamped at full).
        let log = pack.discharge_log(&[AmpereHours::new(-5.0)]);
        assert_eq!(log[0].0, 1.0);
    }

    #[test]
    fn energy_of_charge_is_joules() {
        let pack = BatteryPack::spark_ev();
        // 1 Ah at 399 V = 3600 s * 399 W = 1,436,400 J.
        assert!((pack.energy_of_charge(AmpereHours::new(1.0)) - 1_436_400.0).abs() < 1e-6);
    }
}
