//! The force / power / charge-rate model and trip-energy integration.

use crate::params::VehicleParams;
use crate::GRAVITY;
use serde::{Deserialize, Serialize};
use velopt_common::units::{
    AmpereHours, Amperes, Meters, MetersPerSecond, MetersPerSecondSq, Radians, Seconds, Watts,
};
use velopt_common::{Error, Result, TimeSeries};

/// How regenerative braking is converted into battery charge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum RegenPolicy {
    /// Eq. (3) applied literally for both signs of the drive force:
    /// `ζ = F·v / (U·η₁·η₂)`. This is what produces the negative region of
    /// Fig. 3 and is the default.
    #[default]
    PaperLiteral,
    /// A more physical model: when the wheel power is negative, only
    /// `efficiency` of it charges the battery, and no regeneration occurs
    /// below `cutoff` (motor-generators cannot recuperate at crawl speeds).
    Limited {
        /// Fraction of braking power recovered, in `[0, 1]`.
        efficiency: f64,
        /// Speed below which no energy is recovered.
        cutoff: MetersPerSecond,
    },
}

/// Charge, time and exit speed of one constant-acceleration segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentEnergy {
    /// Net charge drawn from the pack over the segment (negative = regen).
    pub charge: AmpereHours,
    /// Time taken to cover the segment.
    pub duration: Seconds,
    /// Speed at the end of the segment.
    pub exit_speed: MetersPerSecond,
}

/// One velocity-lattice evaluation request: every `(v_from, v_to)` pair of
/// a uniform speed grid over a single constant-grade segment. This is the
/// batched entry point the DP's transition-cost cache is built from (see
/// `velopt-core`'s `memo` module): the cost of a transition depends only on
/// these six numbers, so one grid evaluation serves every layer, trip and
/// replan tick that shares the segment class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Speed-grid resolution; lattice speed `i` is `dv * i`.
    pub dv: MetersPerSecond,
    /// Lattice size (speeds `0..n_speeds`).
    pub n_speeds: usize,
    /// Segment length.
    pub distance: Meters,
    /// Constant grade over the segment.
    pub grade: Radians,
    /// Most negative admissible constant acceleration.
    pub a_min: MetersPerSecondSq,
    /// Most positive admissible constant acceleration.
    pub a_max: MetersPerSecondSq,
}

/// The EV energy-consumption model of §II-A.
///
/// # Examples
///
/// ```
/// use velopt_common::units::{MetersPerSecond, MetersPerSecondSq, Radians};
/// use velopt_ev_energy::{EnergyModel, VehicleParams};
///
/// let model = EnergyModel::new(VehicleParams::spark_ev());
/// let f = model.drive_force(
///     MetersPerSecond::new(20.0),
///     MetersPerSecondSq::ZERO,
///     Radians::ZERO,
/// );
/// // At constant 20 m/s on flat ground only drag + rolling resistance act.
/// assert!(f > 0.0 && f < 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: VehicleParams,
    regen: RegenPolicy,
    quadrature_steps: usize,
}

impl EnergyModel {
    /// Creates a model with the paper-literal regeneration policy.
    pub fn new(params: VehicleParams) -> Self {
        Self {
            params,
            regen: RegenPolicy::PaperLiteral,
            quadrature_steps: 16,
        }
    }

    /// Creates a model with an explicit regeneration policy.
    pub fn with_regen(params: VehicleParams, regen: RegenPolicy) -> Self {
        Self {
            params,
            regen,
            quadrature_steps: 16,
        }
    }

    /// The vehicle parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// The active regeneration policy.
    pub fn regen_policy(&self) -> RegenPolicy {
        self.regen
    }

    /// The constant auxiliary current `P_aux / U` drawn for the whole trip.
    ///
    /// [`charge_rate`](Self::charge_rate) deliberately excludes it (Eq. 3
    /// and Fig. 3 are pure-traction quantities); the trip integrators
    /// ([`segment_energy`](Self::segment_energy),
    /// [`profile_energy`](Self::profile_energy)) include it.
    pub fn aux_current(&self) -> Amperes {
        Amperes::new(self.params.aux_power_w() / self.params.battery().voltage().value())
    }

    /// Required drive force `F_drive` in newtons, Eq. (1).
    pub fn drive_force(&self, v: MetersPerSecond, a: MetersPerSecondSq, grade: Radians) -> f64 {
        let p = &self.params;
        let inertial = p.mass_kg() * a.value();
        let drag = 0.5
            * p.air_density()
            * p.frontal_area_m2()
            * p.drag_coefficient()
            * v.value()
            * v.value();
        let climb = p.mass_kg() * GRAVITY * grade.sin();
        let roll = p.rolling_resistance() * p.mass_kg() * GRAVITY * grade.cos();
        inertial + drag + climb + roll
    }

    /// Mechanical power at the wheels, `F_drive · v`.
    pub fn wheel_power(&self, v: MetersPerSecond, a: MetersPerSecondSq, grade: Radians) -> Watts {
        Watts::new(self.drive_force(v, a, grade) * v.value())
    }

    /// Instantaneous charge-consumption rate ζ in amperes, Eq. (3).
    ///
    /// Positive values discharge the pack; negative values (possible when the
    /// drive force is negative, i.e. braking or descending) regenerate.
    pub fn charge_rate(&self, v: MetersPerSecond, a: MetersPerSecondSq, grade: Radians) -> Amperes {
        let p_wheel = self.wheel_power(v, a, grade).value();
        let u = self.params.battery().voltage().value();
        let eta = self.params.total_efficiency();
        let current = match self.regen {
            RegenPolicy::PaperLiteral => p_wheel / (u * eta),
            RegenPolicy::Limited { efficiency, cutoff } => {
                if p_wheel >= 0.0 {
                    p_wheel / (u * eta)
                } else if v < cutoff {
                    0.0
                } else {
                    p_wheel * efficiency / u
                }
            }
        };
        Amperes::new(current)
    }

    /// Integrates the charge drawn over one constant-acceleration segment of
    /// length `distance`, entered at speed `v0`, on constant `grade`.
    ///
    /// The exit speed follows the kinematic relation `v₁² = v₀² + 2·a·d`.
    /// (The paper's Eq. between (7) and (8) writes `v₁ = v₀ + a·d`, which is
    /// dimensionally inconsistent; the kinematic form is the standard
    /// spatial-DP transition and is what we implement.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDomain`] if the vehicle would stop before
    /// covering the segment (deceleration too strong) or if it never moves
    /// (`v0 = 0` with `a <= 0`), and [`Error::InvalidInput`] for a
    /// non-positive distance.
    pub fn segment_energy(
        &self,
        v0: MetersPerSecond,
        a: MetersPerSecondSq,
        distance: Meters,
        grade: Radians,
    ) -> Result<SegmentEnergy> {
        if distance.value() <= 0.0 {
            return Err(Error::invalid_input("segment distance must be positive"));
        }
        if v0.value() < 0.0 {
            return Err(Error::invalid_input("entry speed must be non-negative"));
        }
        let v1_sq = v0.value() * v0.value() + 2.0 * a.value() * distance.value();
        if v1_sq < -1e-12 {
            return Err(Error::out_of_domain(
                "vehicle stops before the end of the segment",
            ));
        }
        let v1 = v1_sq.max(0.0).sqrt();
        let duration = if a.value().abs() > 1e-12 {
            (v1 - v0.value()) / a.value()
        } else if v0.value() > 0.0 {
            distance.value() / v0.value()
        } else {
            return Err(Error::out_of_domain(
                "vehicle at rest with zero acceleration never covers the segment",
            ));
        };
        if !(duration.is_finite() && duration > 0.0) {
            return Err(Error::out_of_domain(
                "segment cannot be traversed with the given kinematics",
            ));
        }

        // Trapezoidal quadrature of ζ(v(t)) over the segment duration.
        let n = self.quadrature_steps;
        let dt = duration / n as f64;
        let mut amp_seconds = 0.0;
        let mut prev = self.charge_rate(v0, a, grade).value();
        for i in 1..=n {
            let v = MetersPerSecond::new(v0.value() + a.value() * dt * i as f64);
            let cur = self
                .charge_rate(v.max(MetersPerSecond::ZERO), a, grade)
                .value();
            amp_seconds += 0.5 * (prev + cur) * dt;
            prev = cur;
        }
        amp_seconds += self.aux_current().value() * duration;
        Ok(SegmentEnergy {
            charge: AmpereHours::new(amp_seconds / 3600.0),
            duration: Seconds::new(duration),
            exit_speed: MetersPerSecond::new(v1),
        })
    }

    /// Evaluates [`segment_energy`](Self::segment_energy) over the whole
    /// `(v_from, v_to)` lattice of `spec` in one call, returning the
    /// row-major `n_speeds × n_speeds` grid (entry `v_from_idx * n_speeds +
    /// v_to_idx`) and the number of energy-model evaluations performed.
    ///
    /// An entry is `None` when the transition is kinematically infeasible:
    /// the implied constant acceleration `(v₁² − v₀²) / (2·d)` falls outside
    /// `[a_min − 1e-9, a_max + 1e-9]` (the DP solver's exact feasibility
    /// expression, tolerances included, so a cached grid and a direct
    /// evaluation agree bit-for-bit), or both endpoint speeds are zero (the
    /// segment would never be covered). Infeasible entries cost no
    /// evaluation.
    pub fn segment_energy_grid(&self, spec: &GridSpec) -> (Vec<Option<SegmentEnergy>>, u64) {
        let d = spec.distance.value();
        let mut grid = Vec::with_capacity(spec.n_speeds * spec.n_speeds);
        let mut evals = 0u64;
        for vi in 0..spec.n_speeds {
            let v0 = spec.dv.value() * vi as f64;
            for vj in 0..spec.n_speeds {
                let v1 = spec.dv.value() * vj as f64;
                let a = (v1 * v1 - v0 * v0) / (2.0 * d);
                if a < spec.a_min.value() - 1e-9 || a > spec.a_max.value() + 1e-9 {
                    grid.push(None);
                    continue;
                }
                if v0 <= 0.0 && v1 <= 0.0 {
                    grid.push(None);
                    continue;
                }
                evals += 1;
                grid.push(
                    self.segment_energy(
                        MetersPerSecond::new(v0),
                        MetersPerSecondSq::new(a),
                        spec.distance,
                        spec.grade,
                    )
                    .ok(),
                );
            }
        }
        (grid, evals)
    }

    /// A value that changes whenever this model could produce different
    /// numbers: all vehicle parameters, the battery voltage, the
    /// regeneration policy and the quadrature resolution. The DP's
    /// transition-cost cache keys its validity on this, so a cached grid is
    /// never served to a solver with a different physics configuration.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let p = &self.params;
        mix(p.mass_kg().to_bits());
        mix(p.frontal_area_m2().to_bits());
        mix(p.drag_coefficient().to_bits());
        mix(p.rolling_resistance().to_bits());
        mix(p.air_density().to_bits());
        mix(p.battery_efficiency().to_bits());
        mix(p.powertrain_efficiency().to_bits());
        mix(p.aux_power_w().to_bits());
        mix(p.battery().voltage().value().to_bits());
        match self.regen {
            RegenPolicy::PaperLiteral => mix(1),
            RegenPolicy::Limited { efficiency, cutoff } => {
                mix(2);
                mix(efficiency.to_bits());
                mix(cutoff.value().to_bits());
            }
        }
        mix(self.quadrature_steps as u64);
        h
    }

    /// Total charge drawn over a velocity profile sampled in time.
    ///
    /// Acceleration is estimated by central finite differences; the position
    /// is accumulated by trapezoidal integration and fed to `grade_at` so
    /// that grade-dependent terms act at the right place on the road.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the profile contains negative
    /// speeds.
    pub fn profile_energy(
        &self,
        velocity: &TimeSeries,
        grade_at: impl Fn(Meters) -> Radians,
    ) -> Result<AmpereHours> {
        let vs = velocity.samples();
        if vs.iter().any(|&v| v < 0.0) {
            return Err(Error::invalid_input("velocity profile has negative speeds"));
        }
        let dt = velocity.step().value();
        let mut x = 0.0;
        let mut amp_seconds = 0.0;
        let mut rates = Vec::with_capacity(vs.len());
        for i in 0..vs.len() {
            let a = if vs.len() == 1 {
                0.0
            } else if i == 0 {
                (vs[1] - vs[0]) / dt
            } else if i == vs.len() - 1 {
                (vs[i] - vs[i - 1]) / dt
            } else {
                (vs[i + 1] - vs[i - 1]) / (2.0 * dt)
            };
            if i > 0 {
                x += 0.5 * (vs[i - 1] + vs[i]) * dt;
            }
            let rate = self.charge_rate(
                MetersPerSecond::new(vs[i]),
                MetersPerSecondSq::new(a),
                grade_at(Meters::new(x)),
            );
            rates.push(rate.value());
        }
        for w in rates.windows(2) {
            amp_seconds += 0.5 * (w[0] + w[1]) * dt;
        }
        amp_seconds += self.aux_current().value() * velocity.duration().value();
        Ok(AmpereHours::new(amp_seconds / 3600.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::Seconds;

    fn model() -> EnergyModel {
        EnergyModel::new(VehicleParams::spark_ev())
    }

    #[test]
    fn force_components_at_rest_flat() {
        // At v=0, a=0, θ=0 only rolling resistance acts.
        let f = model().drive_force(
            MetersPerSecond::ZERO,
            MetersPerSecondSq::ZERO,
            Radians::ZERO,
        );
        let expected = 0.018 * 1300.0 * GRAVITY;
        assert!((f - expected).abs() < 1e-9);
    }

    #[test]
    fn drag_grows_quadratically() {
        let m = model();
        let f = |v: f64| {
            m.drive_force(
                MetersPerSecond::new(v),
                MetersPerSecondSq::ZERO,
                Radians::ZERO,
            )
        };
        let roll = f(0.0);
        let d10 = f(10.0) - roll;
        let d20 = f(20.0) - roll;
        assert!((d20 / d10 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn uphill_costs_more_than_flat() {
        let m = model();
        let flat = m.charge_rate(
            MetersPerSecond::new(15.0),
            MetersPerSecondSq::ZERO,
            Radians::ZERO,
        );
        let hill = m.charge_rate(
            MetersPerSecond::new(15.0),
            MetersPerSecondSq::ZERO,
            Radians::from_grade_percent(5.0),
        );
        assert!(hill.value() > flat.value());
    }

    #[test]
    fn hard_braking_regenerates_paper_literal() {
        let rate = model().charge_rate(
            MetersPerSecond::new(20.0),
            MetersPerSecondSq::new(-1.5),
            Radians::ZERO,
        );
        assert!(rate.value() < 0.0);
    }

    #[test]
    fn limited_regen_cuts_off_at_low_speed() {
        let m = EnergyModel::with_regen(
            VehicleParams::spark_ev(),
            RegenPolicy::Limited {
                efficiency: 0.6,
                cutoff: MetersPerSecond::new(2.0),
            },
        );
        let slow = m.charge_rate(
            MetersPerSecond::new(1.0),
            MetersPerSecondSq::new(-1.5),
            Radians::ZERO,
        );
        assert_eq!(slow.value(), 0.0);
        let fastish = m.charge_rate(
            MetersPerSecond::new(20.0),
            MetersPerSecondSq::new(-1.5),
            Radians::ZERO,
        );
        assert!(fastish.value() < 0.0);
        // Limited regen recovers less than the paper-literal formula.
        let literal = model().charge_rate(
            MetersPerSecond::new(20.0),
            MetersPerSecondSq::new(-1.5),
            Radians::ZERO,
        );
        assert!(fastish.value() > literal.value());
    }

    #[test]
    fn segment_constant_speed_matches_closed_form() {
        let m = model();
        let seg = m
            .segment_energy(
                MetersPerSecond::new(10.0),
                MetersPerSecondSq::ZERO,
                Meters::new(100.0),
                Radians::ZERO,
            )
            .unwrap();
        assert!((seg.duration.value() - 10.0).abs() < 1e-9);
        assert!((seg.exit_speed.value() - 10.0).abs() < 1e-9);
        let rate = m
            .charge_rate(
                MetersPerSecond::new(10.0),
                MetersPerSecondSq::ZERO,
                Radians::ZERO,
            )
            .value()
            + m.aux_current().value();
        assert!((seg.charge.value() - rate * 10.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn segment_kinematics_exit_speed() {
        let seg = model()
            .segment_energy(
                MetersPerSecond::new(10.0),
                MetersPerSecondSq::new(2.0),
                Meters::new(75.0),
                Radians::ZERO,
            )
            .unwrap();
        // v1 = sqrt(100 + 2*2*75) = 20.
        assert!((seg.exit_speed.value() - 20.0).abs() < 1e-9);
        assert!((seg.duration.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn segment_rejects_stopping_mid_segment() {
        let err = model()
            .segment_energy(
                MetersPerSecond::new(5.0),
                MetersPerSecondSq::new(-1.5),
                Meters::new(100.0),
                Radians::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::OutOfDomain(_)));
    }

    #[test]
    fn segment_rejects_rest_with_no_accel() {
        assert!(model()
            .segment_energy(
                MetersPerSecond::ZERO,
                MetersPerSecondSq::ZERO,
                Meters::new(10.0),
                Radians::ZERO,
            )
            .is_err());
        assert!(model()
            .segment_energy(
                MetersPerSecond::new(10.0),
                MetersPerSecondSq::ZERO,
                Meters::ZERO,
                Radians::ZERO,
            )
            .is_err());
    }

    #[test]
    fn profile_energy_matches_segment_for_constant_speed() {
        let m = model();
        let profile =
            TimeSeries::from_samples(Seconds::ZERO, Seconds::new(0.5), vec![10.0; 21]).unwrap();
        let q = m.profile_energy(&profile, |_| Radians::ZERO).unwrap();
        let seg = m
            .segment_energy(
                MetersPerSecond::new(10.0),
                MetersPerSecondSq::ZERO,
                Meters::new(100.0),
                Radians::ZERO,
            )
            .unwrap();
        assert!((q.value() - seg.charge.value()).abs() < 1e-9);
    }

    #[test]
    fn profile_energy_rejects_negative_speed() {
        let profile =
            TimeSeries::from_samples(Seconds::ZERO, Seconds::new(1.0), vec![1.0, -0.5]).unwrap();
        assert!(model().profile_energy(&profile, |_| Radians::ZERO).is_err());
    }

    fn us25_like_grid() -> GridSpec {
        GridSpec {
            dv: MetersPerSecond::new(1.0),
            n_speeds: 20,
            distance: Meters::new(20.0),
            grade: Radians::ZERO,
            a_min: MetersPerSecondSq::new(-1.5),
            a_max: MetersPerSecondSq::new(2.5),
        }
    }

    #[test]
    fn grid_matches_direct_segment_energy_bitwise() {
        let m = model();
        let spec = us25_like_grid();
        let (grid, evals) = m.segment_energy_grid(&spec);
        assert_eq!(grid.len(), spec.n_speeds * spec.n_speeds);
        assert!(evals > 0);
        let mut seen = 0u64;
        for vi in 0..spec.n_speeds {
            for vj in 0..spec.n_speeds {
                let v0 = spec.dv.value() * vi as f64;
                let v1 = spec.dv.value() * vj as f64;
                let a = (v1 * v1 - v0 * v0) / (2.0 * spec.distance.value());
                let entry = &grid[vi * spec.n_speeds + vj];
                if a < spec.a_min.value() - 1e-9
                    || a > spec.a_max.value() + 1e-9
                    || (v0 <= 0.0 && v1 <= 0.0)
                {
                    assert!(entry.is_none(), "({vi},{vj}) should be infeasible");
                    continue;
                }
                seen += 1;
                let direct = m
                    .segment_energy(
                        MetersPerSecond::new(v0),
                        MetersPerSecondSq::new(a),
                        spec.distance,
                        spec.grade,
                    )
                    .unwrap();
                let cached = entry.expect("feasible pair must be evaluated");
                assert_eq!(
                    cached.charge.value().to_bits(),
                    direct.charge.value().to_bits()
                );
                assert_eq!(
                    cached.duration.value().to_bits(),
                    direct.duration.value().to_bits()
                );
            }
        }
        assert_eq!(seen, evals);
    }

    #[test]
    fn grid_rest_to_rest_is_infeasible() {
        let (grid, _) = model().segment_energy_grid(&us25_like_grid());
        assert!(grid[0].is_none(), "v0 = v1 = 0 cannot cover the segment");
    }

    #[test]
    fn fingerprint_tracks_configuration() {
        let base = model().fingerprint();
        assert_eq!(base, model().fingerprint(), "fingerprint is deterministic");
        let heavier = EnergyModel::new(VehicleParams::builder().mass_kg(1500.0).build().unwrap());
        assert_ne!(base, heavier.fingerprint());
        let limited = EnergyModel::with_regen(
            VehicleParams::spark_ev(),
            RegenPolicy::Limited {
                efficiency: 0.6,
                cutoff: MetersPerSecond::new(2.0),
            },
        );
        assert_ne!(base, limited.fingerprint());
    }

    #[test]
    fn accel_decel_round_trip_costs_net_energy_paper_literal() {
        // Even with full paper-literal regen, drag and rolling losses make a
        // speed-up/slow-down cycle net-positive.
        let m = model();
        let up = m
            .segment_energy(
                MetersPerSecond::new(5.0),
                MetersPerSecondSq::new(1.0),
                Meters::new(100.0),
                Radians::ZERO,
            )
            .unwrap();
        let down = m
            .segment_energy(
                up.exit_speed,
                MetersPerSecondSq::new(-1.0),
                Meters::new(100.0),
                Radians::ZERO,
            )
            .unwrap();
        assert!((down.exit_speed.value() - 5.0).abs() < 1e-6);
        assert!(up.charge.value() + down.charge.value() > 0.0);
    }
}
