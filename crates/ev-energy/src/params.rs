//! Vehicle physical parameters (the constants of Eq. 1–3).

use crate::battery::BatteryPack;
use crate::AIR_DENSITY;
use serde::{Deserialize, Serialize};
use velopt_common::{Error, Result};

/// Physical constants of the modeled EV.
///
/// Construct via [`VehicleParams::builder`] or use the paper's
/// [`VehicleParams::spark_ev`] preset (§III-A-1):
/// `m = 1300 kg`, `A_f = 2.0 m²`, `C_d = 0.33`, `μ = 0.018`, `η₁ = 0.95`,
/// `η₂ = 0.9`, pack `46.2 Ah @ 399 V`.
///
/// # Examples
///
/// ```
/// use velopt_ev_energy::VehicleParams;
///
/// let spark = VehicleParams::spark_ev();
/// assert_eq!(spark.mass_kg(), 1300.0);
/// assert!((spark.battery().voltage().value() - 399.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    mass_kg: f64,
    frontal_area_m2: f64,
    drag_coefficient: f64,
    rolling_resistance: f64,
    air_density: f64,
    battery_efficiency: f64,
    powertrain_efficiency: f64,
    aux_power_w: f64,
    battery: BatteryPack,
}

impl VehicleParams {
    /// Starts a builder with the Spark EV defaults.
    pub fn builder() -> VehicleParamsBuilder {
        VehicleParamsBuilder::default()
    }

    /// The Chevrolet Spark EV configuration used throughout the paper's
    /// evaluation.
    pub fn spark_ev() -> Self {
        VehicleParamsBuilder::default()
            .build()
            .expect("spark EV preset is valid")
    }

    /// Gross vehicle mass `m` in kilograms.
    pub fn mass_kg(&self) -> f64 {
        self.mass_kg
    }

    /// Frontal area `A_f` in square meters.
    pub fn frontal_area_m2(&self) -> f64 {
        self.frontal_area_m2
    }

    /// Aerodynamic drag coefficient `C_d`.
    pub fn drag_coefficient(&self) -> f64 {
        self.drag_coefficient
    }

    /// Rolling resistance coefficient `μ`.
    pub fn rolling_resistance(&self) -> f64 {
        self.rolling_resistance
    }

    /// Air density `ρ` in kg/m³.
    pub fn air_density(&self) -> f64 {
        self.air_density
    }

    /// Battery energy-transforming efficiency `η₁`.
    pub fn battery_efficiency(&self) -> f64 {
        self.battery_efficiency
    }

    /// Powertrain working efficiency `η₂`.
    pub fn powertrain_efficiency(&self) -> f64 {
        self.powertrain_efficiency
    }

    /// Constant auxiliary (hotel) load in watts: electronics, pumps,
    /// climate control. Drawn for the whole trip duration regardless of
    /// motion, it is what makes very slow trips expensive for a real EV.
    pub fn aux_power_w(&self) -> f64 {
        self.aux_power_w
    }

    /// The battery pack.
    pub fn battery(&self) -> &BatteryPack {
        &self.battery
    }

    /// Product `η₁·η₂` appearing in Eq. (2)–(3).
    pub fn total_efficiency(&self) -> f64 {
        self.battery_efficiency * self.powertrain_efficiency
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self::spark_ev()
    }
}

/// Builder for [`VehicleParams`].
///
/// All setters take and return `&mut self`; finish with
/// [`build`](VehicleParamsBuilder::build).
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_ev_energy::VehicleParams;
///
/// let heavy = VehicleParams::builder().mass_kg(1800.0).build()?;
/// assert_eq!(heavy.mass_kg(), 1800.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VehicleParamsBuilder {
    mass_kg: f64,
    frontal_area_m2: f64,
    drag_coefficient: f64,
    rolling_resistance: f64,
    air_density: f64,
    battery_efficiency: f64,
    powertrain_efficiency: f64,
    aux_power_w: f64,
    battery: BatteryPack,
}

impl Default for VehicleParamsBuilder {
    fn default() -> Self {
        Self {
            mass_kg: 1300.0,
            frontal_area_m2: 2.0,
            drag_coefficient: 0.33,
            rolling_resistance: 0.018,
            air_density: AIR_DENSITY,
            battery_efficiency: 0.95,
            powertrain_efficiency: 0.9,
            aux_power_w: 1000.0,
            battery: BatteryPack::spark_ev(),
        }
    }
}

impl VehicleParamsBuilder {
    /// Sets the gross vehicle mass in kilograms.
    pub fn mass_kg(&mut self, m: f64) -> &mut Self {
        self.mass_kg = m;
        self
    }

    /// Sets the frontal area in square meters.
    pub fn frontal_area_m2(&mut self, a: f64) -> &mut Self {
        self.frontal_area_m2 = a;
        self
    }

    /// Sets the drag coefficient.
    pub fn drag_coefficient(&mut self, cd: f64) -> &mut Self {
        self.drag_coefficient = cd;
        self
    }

    /// Sets the rolling resistance coefficient.
    pub fn rolling_resistance(&mut self, mu: f64) -> &mut Self {
        self.rolling_resistance = mu;
        self
    }

    /// Sets the ambient air density in kg/m³.
    pub fn air_density(&mut self, rho: f64) -> &mut Self {
        self.air_density = rho;
        self
    }

    /// Sets the battery efficiency `η₁`.
    pub fn battery_efficiency(&mut self, eta1: f64) -> &mut Self {
        self.battery_efficiency = eta1;
        self
    }

    /// Sets the powertrain efficiency `η₂`.
    pub fn powertrain_efficiency(&mut self, eta2: f64) -> &mut Self {
        self.powertrain_efficiency = eta2;
        self
    }

    /// Sets the constant auxiliary (hotel) load in watts.
    pub fn aux_power_w(&mut self, watts: f64) -> &mut Self {
        self.aux_power_w = watts;
        self
    }

    /// Sets the battery pack.
    pub fn battery(&mut self, pack: BatteryPack) -> &mut Self {
        self.battery = pack;
        self
    }

    /// Validates the configuration and builds [`VehicleParams`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any physical constant is
    /// non-positive or an efficiency lies outside `(0, 1]`.
    pub fn build(&self) -> Result<VehicleParams> {
        let positive = [
            ("mass", self.mass_kg),
            ("frontal area", self.frontal_area_m2),
            ("drag coefficient", self.drag_coefficient),
            ("rolling resistance", self.rolling_resistance),
            ("air density", self.air_density),
        ];
        for (name, v) in positive {
            if !(v > 0.0 && v.is_finite()) {
                return Err(Error::invalid_input(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if !(self.aux_power_w >= 0.0 && self.aux_power_w.is_finite()) {
            return Err(Error::invalid_input(format!(
                "auxiliary power must be non-negative and finite, got {}",
                self.aux_power_w
            )));
        }
        for (name, v) in [
            ("battery efficiency", self.battery_efficiency),
            ("powertrain efficiency", self.powertrain_efficiency),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(Error::invalid_input(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        Ok(VehicleParams {
            aux_power_w: self.aux_power_w,
            mass_kg: self.mass_kg,
            frontal_area_m2: self.frontal_area_m2,
            drag_coefficient: self.drag_coefficient,
            rolling_resistance: self.rolling_resistance,
            air_density: self.air_density,
            battery_efficiency: self.battery_efficiency,
            powertrain_efficiency: self.powertrain_efficiency,
            battery: self.battery.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_preset_matches_paper_constants() {
        let p = VehicleParams::spark_ev();
        assert_eq!(p.mass_kg(), 1300.0);
        assert_eq!(p.frontal_area_m2(), 2.0);
        assert_eq!(p.drag_coefficient(), 0.33);
        assert_eq!(p.rolling_resistance(), 0.018);
        assert_eq!(p.battery_efficiency(), 0.95);
        assert_eq!(p.powertrain_efficiency(), 0.9);
        assert!((p.total_efficiency() - 0.855).abs() < 1e-12);
        assert_eq!(p.aux_power_w(), 1000.0);
    }

    #[test]
    fn aux_power_validated_and_overridable() {
        assert!(VehicleParams::builder().aux_power_w(-1.0).build().is_err());
        let quiet = VehicleParams::builder().aux_power_w(0.0).build().unwrap();
        assert_eq!(quiet.aux_power_w(), 0.0);
    }

    #[test]
    fn default_equals_spark() {
        assert_eq!(VehicleParams::default(), VehicleParams::spark_ev());
    }

    #[test]
    fn builder_overrides() {
        let p = VehicleParams::builder()
            .mass_kg(1500.0)
            .drag_coefficient(0.28)
            .build()
            .unwrap();
        assert_eq!(p.mass_kg(), 1500.0);
        assert_eq!(p.drag_coefficient(), 0.28);
        // Untouched fields keep the preset values.
        assert_eq!(p.frontal_area_m2(), 2.0);
    }

    #[test]
    fn builder_rejects_nonpositive() {
        assert!(VehicleParams::builder().mass_kg(0.0).build().is_err());
        assert!(VehicleParams::builder().mass_kg(-1.0).build().is_err());
        assert!(VehicleParams::builder()
            .air_density(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_efficiency() {
        assert!(VehicleParams::builder()
            .battery_efficiency(1.2)
            .build()
            .is_err());
        assert!(VehicleParams::builder()
            .powertrain_efficiency(0.0)
            .build()
            .is_err());
    }
}
