//! Property-based tests for the EV energy model invariants.

use proptest::prelude::*;
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Radians};
use velopt_ev_energy::{EnergyModel, RegenPolicy, VehicleParams};

fn model() -> EnergyModel {
    EnergyModel::new(VehicleParams::spark_ev())
}

proptest! {
    /// ζ has the sign of the wheel power: positive when accelerating hard,
    /// negative when the braking force dominates, zero exactly at v = 0.
    #[test]
    fn rate_sign_matches_wheel_power(v in 0.0f64..40.0, a in -1.5f64..2.5, g in -5.0f64..5.0) {
        let m = model();
        let grade = Radians::from_grade_percent(g);
        let p = m.wheel_power(MetersPerSecond::new(v), MetersPerSecondSq::new(a), grade);
        let z = m.charge_rate(MetersPerSecond::new(v), MetersPerSecondSq::new(a), grade);
        prop_assert_eq!(p.value() > 0.0, z.value() > 0.0);
        prop_assert_eq!(p.value() < 0.0, z.value() < 0.0);
    }

    /// At fixed speed and grade the rate is strictly increasing in
    /// acceleration (the shape of Fig. 3).
    #[test]
    fn rate_monotone_in_acceleration(v in 0.5f64..40.0, a in -1.5f64..2.4) {
        let m = model();
        let z1 = m.charge_rate(
            MetersPerSecond::new(v),
            MetersPerSecondSq::new(a),
            Radians::ZERO,
        );
        let z2 = m.charge_rate(
            MetersPerSecond::new(v),
            MetersPerSecondSq::new(a + 0.1),
            Radians::ZERO,
        );
        prop_assert!(z2.value() > z1.value());
    }

    /// Steeper climbs always cost more at the same kinematic state.
    #[test]
    fn rate_monotone_in_grade(v in 0.5f64..40.0, a in -1.5f64..2.5, g in 0.0f64..8.0) {
        let m = model();
        let z_flat = m.charge_rate(
            MetersPerSecond::new(v),
            MetersPerSecondSq::new(a),
            Radians::from_grade_percent(g),
        );
        let z_steep = m.charge_rate(
            MetersPerSecond::new(v),
            MetersPerSecondSq::new(a),
            Radians::from_grade_percent(g + 1.0),
        );
        prop_assert!(z_steep.value() > z_flat.value());
    }

    /// Limited regen never recovers more than the paper-literal formula and
    /// never discharges during braking.
    #[test]
    fn limited_regen_bounded(v in 0.0f64..40.0, a in -1.5f64..-0.01, eff in 0.0f64..1.0) {
        let literal = model();
        let limited = EnergyModel::with_regen(
            VehicleParams::spark_ev(),
            RegenPolicy::Limited { efficiency: eff, cutoff: MetersPerSecond::new(1.0) },
        );
        let zl = literal.charge_rate(
            MetersPerSecond::new(v), MetersPerSecondSq::new(a), Radians::ZERO);
        let zr = limited.charge_rate(
            MetersPerSecond::new(v), MetersPerSecondSq::new(a), Radians::ZERO);
        if zl.value() < 0.0 {
            prop_assert!(zr.value() <= 0.0);
            prop_assert!(zr.value() >= zl.value() - 1e-12);
        }
    }

    /// Segment integration: duration and exit speed always satisfy the
    /// kinematic identities, and charge scales with distance for cruise.
    #[test]
    fn segment_kinematics_consistent(v0 in 1.0f64..30.0, a in -0.5f64..2.0, d in 10.0f64..500.0) {
        let m = model();
        let result = m.segment_energy(
            MetersPerSecond::new(v0),
            MetersPerSecondSq::new(a),
            Meters::new(d),
            Radians::ZERO,
        );
        let v1_sq = v0 * v0 + 2.0 * a * d;
        if v1_sq <= 0.0 {
            prop_assert!(result.is_err());
        } else {
            let seg = result.unwrap();
            prop_assert!((seg.exit_speed.value() - v1_sq.sqrt()).abs() < 1e-9);
            // d = (v0 + v1)/2 * t for constant acceleration.
            let mean_v = 0.5 * (v0 + seg.exit_speed.value());
            prop_assert!((mean_v * seg.duration.value() - d).abs() < 1e-6);
        }
    }

    /// Cruise charge is linear in distance.
    #[test]
    fn cruise_charge_linear_in_distance(v in 2.0f64..35.0, d in 50.0f64..400.0) {
        let m = model();
        let q1 = m.segment_energy(
            MetersPerSecond::new(v), MetersPerSecondSq::ZERO, Meters::new(d), Radians::ZERO,
        ).unwrap().charge.value();
        let q2 = m.segment_energy(
            MetersPerSecond::new(v), MetersPerSecondSq::ZERO, Meters::new(2.0 * d), Radians::ZERO,
        ).unwrap().charge.value();
        prop_assert!((q2 - 2.0 * q1).abs() < 1e-9);
    }

    /// Heavier vehicles never consume less in traction.
    #[test]
    fn heavier_vehicle_costs_more(v in 1.0f64..30.0, extra in 1.0f64..800.0) {
        let light = model();
        let heavy = EnergyModel::new(
            VehicleParams::builder().mass_kg(1300.0 + extra).build().unwrap());
        let zl = light.charge_rate(
            MetersPerSecond::new(v), MetersPerSecondSq::new(1.0), Radians::ZERO);
        let zh = heavy.charge_rate(
            MetersPerSecond::new(v), MetersPerSecondSq::new(1.0), Radians::ZERO);
        prop_assert!(zh.value() > zl.value());
    }
}
