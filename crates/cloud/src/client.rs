//! The in-vehicle client side of the vehicular cloud.

use crate::protocol::{
    decode_hello, decode_profile, encode_hello, read_frame, tags, write_frame, BatchPlanRequest,
    BatchPlanResponse, PredictBatchRequest, PredictBatchResponse, RouteNetRequest,
    RouteNetResponse, TripRequest,
};
use std::net::{TcpStream, ToSocketAddrs};
use velopt_common::{Error, Result};
use velopt_core::dp::OptimizedProfile;

/// A blocking cloud client ("the EV's modem").
///
/// See the crate-level example.
#[derive(Debug)]
pub struct CloudClient {
    stream: TcpStream,
}

impl CloudClient {
    /// Connects to a [`CloudServer`](crate::CloudServer).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Declares this connection's tenant (fleet) identity and waits for
    /// the echo. Until a connection says hello it belongs to tenant 0; the
    /// server's per-tenant admission counters and stats buckets key on
    /// whatever was declared last.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the server echoes a different tenant
    /// or rejects the frame, and [`Error::Io`] on transport failures.
    pub fn hello(&mut self, tenant: u32) -> Result<()> {
        write_frame(&mut self.stream, tags::REQ_HELLO, &encode_hello(tenant))?;
        let (tag, payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        match tag {
            tags::RESP_HELLO if decode_hello(&payload)? == tenant => Ok(()),
            tags::RESP_HELLO => Err(Error::protocol("server echoed a different tenant")),
            tags::RESP_ERROR => Err(Error::protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(Error::protocol(format!("unexpected response tag {other}"))),
        }
    }

    /// Uploads a trip and waits for the optimized profile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] carrying the server's message when the
    /// request is rejected (bad geometry, infeasible trip), and
    /// [`Error::Io`] on transport failures.
    pub fn request(&mut self, trip: &TripRequest) -> Result<OptimizedProfile> {
        write_frame(&mut self.stream, tags::REQ_TRIP, &trip.encode())?;
        let (tag, mut payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        match tag {
            tags::RESP_PROFILE => decode_profile(&mut payload),
            tags::RESP_ERROR => Err(Error::protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(Error::protocol(format!("unexpected response tag {other}"))),
        }
    }

    /// Uploads a road graph plus an `origin → dest` query and waits for
    /// the energy-optimal route: the chosen edge sequence and the stitched
    /// velocity profile along it. Repeat queries for the same graph and
    /// departure bin are answered from the cloud's route caches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] carrying the server's message when the
    /// request is rejected (malformed graph, unreachable destination), and
    /// [`Error::Io`] on transport failures.
    pub fn route(&mut self, request: &RouteNetRequest) -> Result<RouteNetResponse> {
        write_frame(&mut self.stream, tags::REQ_ROUTE, &request.encode())?;
        let (tag, mut payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        match tag {
            tags::RESP_ROUTE => RouteNetResponse::decode(&mut payload),
            tags::RESP_ERROR => Err(Error::protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(Error::protocol(format!("unexpected response tag {other}"))),
        }
    }

    /// Uploads a whole batch of trips in one frame (the fleet-gateway
    /// path) and waits for the per-trip results, in request order. A trip
    /// the cloud could not plan comes back as an `Err` entry carrying the
    /// server's message; it does not fail the call.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] if the server rejects the batch frame
    /// itself or answers with a malformed or wrongly-sized response, and
    /// [`Error::Io`] on transport failures.
    pub fn plan_batch(
        &mut self,
        trips: &[TripRequest],
    ) -> Result<Vec<std::result::Result<OptimizedProfile, String>>> {
        let batch = BatchPlanRequest {
            trips: trips.to_vec(),
        };
        write_frame(&mut self.stream, tags::REQ_BATCH, &batch.encode())?;
        let (tag, mut payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        match tag {
            tags::RESP_BATCH => {
                let response = BatchPlanResponse::decode(&mut payload)?;
                if response.results.len() != trips.len() {
                    return Err(Error::protocol(format!(
                        "batch answered {} of {} trips",
                        response.results.len(),
                        trips.len()
                    )));
                }
                Ok(response.results)
            }
            tags::RESP_ERROR => Err(Error::protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(Error::protocol(format!("unexpected response tag {other}"))),
        }
    }

    /// Uploads a volume-forecast batch and waits for the predicted
    /// volumes: `result[q][s]` is the forecast (vehicles/hour) for query
    /// `q` at its `hour_index + s`. The cloud trains (and caches) the SAE
    /// predictor for the requested station on first use, so the first
    /// call for a station pays the training cost and later calls are
    /// batched inference only.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] carrying the server's message when the
    /// request is rejected (bad bounds, ragged histories) or the response
    /// is malformed or wrongly sized, and [`Error::Io`] on transport
    /// failures.
    pub fn predict_batch(&mut self, request: &PredictBatchRequest) -> Result<Vec<Vec<f64>>> {
        write_frame(&mut self.stream, tags::REQ_PREDICT_BATCH, &request.encode())?;
        let (tag, mut payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        match tag {
            tags::RESP_PREDICT_BATCH => {
                let response = PredictBatchResponse::decode(&mut payload)?;
                if response.volumes.len() != request.queries.len() {
                    return Err(Error::protocol(format!(
                        "predict batch answered {} of {} queries",
                        response.volumes.len(),
                        request.queries.len()
                    )));
                }
                Ok(response.volumes)
            }
            tags::RESP_ERROR => Err(Error::protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(Error::protocol(format!("unexpected response tag {other}"))),
        }
    }

    /// Fetches the server's `(served, cache hits)` counters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`]/[`Error::Io`] on failures.
    pub fn stats(&mut self) -> Result<(u64, u64)> {
        write_frame(&mut self.stream, tags::REQ_STATS, &[])?;
        let (tag, payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        if tag != tags::RESP_STATS || payload.len() != 16 {
            return Err(Error::protocol("malformed stats response"));
        }
        let served = u64::from_be_bytes(payload[0..8].try_into().expect("8 bytes"));
        let hits = u64::from_be_bytes(payload[8..16].try_into().expect("8 bytes"));
        Ok((served, hits))
    }

    /// Fetches the server's telemetry registry as a JSON document (see
    /// [`telemetry::snapshot_json`]). When the server was built without the
    /// `telemetry` feature, this returns the empty snapshot
    /// `{"counters":[],"histograms":[]}`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`]/[`Error::Io`] on failures.
    pub fn telemetry_json(&mut self) -> Result<String> {
        write_frame(&mut self.stream, tags::REQ_TELEMETRY, &[])?;
        let (tag, payload) = read_frame(&mut self.stream)?
            .ok_or_else(|| Error::protocol("server closed the connection"))?;
        if tag != tags::RESP_TELEMETRY {
            return Err(Error::protocol("malformed telemetry response"));
        }
        String::from_utf8(payload.to_vec())
            .map_err(|_| Error::protocol("telemetry response is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CloudServer;
    use velopt_common::units::Seconds;

    #[test]
    fn end_to_end_profile_request() {
        let server = CloudServer::spawn(2).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let profile = client.request(&TripRequest::us25_at(0.0)).unwrap();
        assert_eq!(profile.window_violations, 0);
        assert!(profile.trip_time.value() > 100.0);
        // Departure time shifts the absolute clock of the plan.
        let later = client.request(&TripRequest::us25_at(60.0)).unwrap();
        assert!((later.times[0] - Seconds::new(60.0)).abs().value() < 1e-9);
        server.shutdown();
    }

    #[test]
    fn cache_hits_for_identical_trips() {
        let server = CloudServer::spawn(2).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let a = client.request(&TripRequest::us25_at(0.0)).unwrap();
        let b = client.request(&TripRequest::us25_at(0.0)).unwrap();
        assert_eq!(a, b);
        let (served, hits) = client.stats().unwrap();
        assert_eq!(served, 2);
        assert_eq!(hits, 1);
        server.shutdown();
    }

    #[test]
    fn invalid_trip_returns_error_frame() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let mut trip = TripRequest::us25_at(0.0);
        trip.rates.pop(); // arity mismatch
        let err = client.request(&trip).unwrap_err();
        assert!(err.to_string().contains("rates"), "{err}");
        // The connection survives an error response.
        assert!(client.request(&TripRequest::us25_at(0.0)).is_ok());
        server.shutdown();
    }

    #[test]
    fn concurrent_vehicles_are_served() {
        let server = CloudServer::spawn(4).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = CloudClient::connect(addr).unwrap();
                    // Distinct departures, so several are real optimizations.
                    let trip = TripRequest::us25_at((i % 3) as f64 * 60.0);
                    client.request(&trip).unwrap()
                })
            })
            .collect();
        for h in handles {
            let profile = h.join().expect("vehicle thread panicked");
            assert_eq!(profile.window_violations, 0);
        }
        assert_eq!(server.stats().served(), 6);
        // Concurrent identical requests may stampede past the cache (both
        // miss before either inserts), so no lower bound holds on the first
        // wave — but a second wave of the same trips must hit every time.
        let hits_before = server.stats().cache_hits();
        let mut client = CloudClient::connect(addr).unwrap();
        for i in 0..3 {
            client
                .request(&TripRequest::us25_at(i as f64 * 60.0))
                .unwrap();
        }
        assert_eq!(server.stats().cache_hits(), hits_before + 3);
        server.shutdown();
    }

    #[test]
    fn batch_round_trip_matches_single_requests() {
        let server = CloudServer::spawn(2).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let trips = [
            TripRequest::us25_at(0.0),
            TripRequest::us25_at(60.0),
            TripRequest::us25_at(120.0),
        ];
        let singles: Vec<_> = trips.iter().map(|t| client.request(t).unwrap()).collect();
        let batched = client.plan_batch(&trips).unwrap();
        assert_eq!(batched.len(), trips.len());
        for (single, result) in singles.iter().zip(&batched) {
            assert_eq!(result.as_ref().unwrap(), single);
        }
        // Profiles over the wire carry their solver metrics.
        assert!(batched[0].as_ref().unwrap().metrics.threads_used >= 1);
        // The three singles warmed the cache; the whole batch hit it.
        let (served, hits) = client.stats().unwrap();
        assert_eq!(served, 6);
        assert_eq!(hits, 3);
        assert_eq!(server.stats().batches(), 1);
        server.shutdown();
    }

    #[test]
    fn batch_with_bad_member_still_plans_the_rest() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let mut bad = TripRequest::us25_at(30.0);
        bad.rates.pop();
        let trips = [TripRequest::us25_at(0.0), bad, TripRequest::us25_at(60.0)];
        let results = client.plan_batch(&trips).unwrap();
        assert!(results[0].is_ok());
        assert!(results[1].as_ref().unwrap_err().contains("rates"));
        assert!(results[2].is_ok());
        // The connection survives and keeps serving.
        assert!(client.request(&TripRequest::us25_at(0.0)).is_ok());
        server.shutdown();
    }

    #[test]
    fn empty_batch_is_answered() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        assert!(client.plan_batch(&[]).unwrap().is_empty());
        server.shutdown();
    }

    #[test]
    fn predict_batch_round_trips_over_the_wire() {
        use crate::protocol::{PredictBatchRequest, PredictQuery};
        use velopt_traffic::VolumeGenerator;
        let server = CloudServer::spawn(2).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let feed = VolumeGenerator::us25_station(21).generate_weeks(2).unwrap();
        let lags = 12;
        let request = PredictBatchRequest {
            station_seed: 21,
            train_weeks: 2,
            horizons: 4,
            queries: vec![
                PredictQuery {
                    history: feed.samples()[..lags].to_vec(),
                    hour_index: lags as u64,
                },
                PredictQuery {
                    history: feed.samples()[feed.len() - lags..].to_vec(),
                    hour_index: feed.len() as u64,
                },
            ],
        };
        let first = client.predict_batch(&request).unwrap();
        assert_eq!(first.len(), 2);
        assert!(first
            .iter()
            .all(|row| row.len() == 4 && row.iter().all(|v| v.is_finite() && *v >= 0.0)));
        // The second call must be answered by the cached predictor,
        // identically.
        let second = client.predict_batch(&request).unwrap();
        assert_eq!(second, first);
        assert_eq!(server.stats().predictor_cache(), (1, 1));
        assert_eq!(server.stats().predictions(), 16);
        assert_eq!(server.stats().frame_counts().predicts, 2);

        // A bad request comes back as an error frame and the connection
        // survives.
        let mut bad = request.clone();
        bad.queries[0].history.pop(); // ragged lag windows
        let err = client.predict_batch(&bad).unwrap_err();
        assert!(err.to_string().contains("history"), "{err}");
        assert!(client.predict_batch(&request).is_ok());
        server.shutdown();
    }

    #[test]
    fn frame_counts_track_the_request_mix() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        client.request(&TripRequest::us25_at(0.0)).unwrap();
        client.request(&TripRequest::us25_at(60.0)).unwrap();
        client.plan_batch(&[TripRequest::us25_at(0.0)]).unwrap();
        client.stats().unwrap();
        client.telemetry_json().unwrap();
        let counts = server.stats().frame_counts();
        assert_eq!(counts.trips, 2);
        assert_eq!(counts.batches, 1);
        assert_eq!(counts.stats, 1);
        assert_eq!(counts.telemetry, 1);
        assert_eq!(counts.unknown, 0);
        assert_eq!(server.stats().connections(), 1);
        assert_eq!(server.stats().error_responses(), 0);
        server.shutdown();
    }

    #[test]
    fn rejected_trips_count_as_error_responses() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let mut trip = TripRequest::us25_at(0.0);
        trip.rates.pop();
        let _ = client.request(&trip).unwrap_err();
        assert_eq!(server.stats().error_responses(), 1);
        server.shutdown();
    }

    #[test]
    fn telemetry_snapshot_round_trips_over_the_wire() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        client.request(&TripRequest::us25_at(0.0)).unwrap();
        let json = client.telemetry_json().unwrap();
        // Whatever the build config, the payload must parse back into a
        // well-formed snapshot.
        let snapshot = telemetry::Snapshot::from_json(&json).unwrap();
        if cfg!(feature = "telemetry") {
            // Recording is live: this very connection was counted. Other
            // tests share the process-global registry, so only lower
            // bounds hold.
            assert!(snapshot.counter("cloud.connections").unwrap() >= 1);
            assert!(snapshot.counter("cloud.req.trip").unwrap() >= 1);
            let plan = snapshot.histogram("cloud.plan_seconds");
            assert!(plan.is_some_and(|h| h.count >= 1));
        } else {
            assert!(snapshot.is_empty());
        }
        server.shutdown();
    }

    fn demo_route_request(depart: f64) -> RouteNetRequest {
        use velopt_road::{CorridorTemplate, NodeId, RoadGraph};
        let template = CorridorTemplate {
            length: (200.0, 400.0),
            lights: (0, 1),
            phase: (15.0, 25.0),
            stop_sign_probability: 0.3,
            max_grade_percent: 0.0,
            limits_kmh: (30.0, 50.0),
        };
        let mut graph = RoadGraph::new(4).unwrap();
        let hops = [(0u32, 1u32), (1, 2), (2, 3), (0, 2), (1, 3)];
        for (i, &(from, to)) in hops.iter().enumerate() {
            graph
                .add_edge(
                    NodeId(from),
                    NodeId(to),
                    template.generate(i as u64 % 3).unwrap(),
                )
                .unwrap();
        }
        RouteNetRequest::from_graph(&graph, NodeId(0), NodeId(3), Seconds::new(depart))
    }

    #[test]
    fn route_round_trip_and_frame_cache() {
        let server = CloudServer::spawn(2).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let request = demo_route_request(10.0);
        let first = client.route(&request).unwrap();
        assert!(!first.edges.is_empty());
        assert_eq!(first.depart, Seconds::new(10.0));
        assert!(first.arrival > first.depart);
        assert!(first.total_energy.value().is_finite());
        // The stitched profile starts at the origin at the departure time
        // and walks a monotone clock.
        assert!((first.times[0] - first.depart).abs().value() < 1e-9);
        assert!(first.times.windows(2).all(|w| w[1] >= w[0]));

        // The fresh search spent oracle calls and is visible in the
        // aggregate route counters.
        let fresh = server.stats().route_search();
        assert!(fresh.oracle_calls > 0);

        // The identical repeat query is a pure frame-cache hit.
        let second = client.route(&request).unwrap();
        assert_eq!(second, first);
        assert_eq!(server.stats().routes(), 2);
        assert_eq!(server.stats().route_cache_hits(), 1);
        assert_eq!(server.stats().route_search(), fresh);
        assert_eq!(server.stats().frame_counts().routes, 2);

        // A malformed query gets an error frame and the connection
        // survives.
        let mut bad = request.clone();
        bad.dest = bad.origin;
        let err = client.route(&bad).unwrap_err();
        assert!(err.to_string().contains("coincide"), "{err}");
        assert!(client.route(&request).is_ok());
        server.shutdown();
    }

    #[test]
    fn route_telemetry_reaches_the_operator() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        client.route(&demo_route_request(0.0)).unwrap();
        let json = client.telemetry_json().unwrap();
        let snapshot = telemetry::Snapshot::from_json(&json).unwrap();
        if cfg!(feature = "telemetry") {
            // The router publishes its own route.* work counters; the
            // server adds the frame-mix counter. Other tests share the
            // process-global registry, so only lower bounds hold.
            assert!(snapshot.counter("cloud.req.route").unwrap() >= 1);
            assert!(snapshot.counter("route.oracle_calls").unwrap() >= 1);
            assert!(snapshot.counter("route.states_settled").unwrap() >= 1);
            let span = snapshot.histogram("cloud.route_seconds");
            assert!(span.is_some_and(|h| h.count >= 1));
        } else {
            assert!(snapshot.is_empty());
        }
        server.shutdown();
    }

    #[test]
    fn baseline_requests_use_green_windows() {
        let server = CloudServer::spawn(1).unwrap();
        let mut client = CloudClient::connect(server.addr()).unwrap();
        let mut trip = TripRequest::us25_at(0.0);
        trip.queue_aware = false;
        let baseline = client.request(&trip).unwrap();
        let ours = client.request(&TripRequest::us25_at(0.0)).unwrap();
        assert_ne!(
            baseline, ours,
            "the two methods should differ under rush demand"
        );
        server.shutdown();
    }
}
