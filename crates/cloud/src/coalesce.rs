//! Request coalescing in front of the compute pool (DESIGN.md §13).
//!
//! Correlated demand is the serving tier's worst case: a signal flips and
//! every EV approaching that corridor replans *the same trip* in the same
//! tick. Without coalescing each replan is an independent DP solve; with
//! it, the worker pool routes `REQ_TRIP` jobs through a short collection
//! window that
//!
//! * **single-flights** identical requests — all waiters for one request
//!   key share one solve and receive clones of one encoded frame
//!   (`cloud.coalesce.hits`), and
//! * **batches** the distinct keys of a window into one
//!   [`DpOptimizer::optimize_batch`](velopt_core::dp::DpOptimizer::optimize_batch)
//!   call (`cloud.batch.size`/`cloud.batch.flushes`) instead of
//!   dispatching singles, and
//! * enforces a **per-tenant admission ceiling** so one greedy tenant
//!   cannot fill the window and starve the others
//!   (`cloud.tenant.rejected`).
//!
//! A window flushes either when it reaches `batch_max` waiters — inline,
//! on the worker that enqueued the last one, which makes the flush point
//! (and therefore every coalesce counter) deterministic under a lockstep
//! load — or when `coalesce_window` elapses, handled by a dedicated
//! flusher thread parked on a condvar.
//!
//! Results are bit-identical to uncoalesced serving by construction:
//! `optimize_batch` is pinned bit-identical to sequential solves, each
//! distinct key is encoded exactly once with the same [`plan_frame`] path
//! the single-dispatch route uses, and waiters receive `Bytes` clones of
//! that one encoding.

use crate::protocol::TripRequest;
use crate::reactor::{FrameBuf, Job, ShardHandle, ShardMsg};
use crate::server::{
    corridor_optimizer, error_frame, plan_frame, trip_constraints, CachedPlan, PlanCache,
    ServerStats,
};
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use velopt_core::batch::PlanRequest;
use velopt_core::dp::{SignalConstraint, StartState};

/// One parked request: enough to deliver a response frame to its
/// connection once the group's solve lands.
struct Waiter {
    shard: usize,
    conn: usize,
    gen: u64,
    tenant: u32,
}

/// All waiters for one request key (one canonical `TripRequest` encoding).
struct Group {
    key: Vec<u8>,
    payload: Bytes,
    waiters: Vec<Waiter>,
}

/// The current collection window. Groups keep insertion order so the
/// batch handed to the solver is reproducible under lockstep load.
#[derive(Default)]
struct Window {
    groups: Vec<Group>,
    index: HashMap<Vec<u8>, usize>,
    waiters: usize,
    deadline: Option<Instant>,
}

impl Window {
    fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[derive(Default)]
struct State {
    window: Window,
    /// Waiters currently parked per tenant — the admission counter.
    tenant_pending: HashMap<u32, usize>,
}

/// The coalescing layer. Shared by the compute workers (which `submit`
/// into it) and the flusher thread (which handles timeout flushes).
pub(crate) struct Coalescer {
    window: Duration,
    batch_max: usize,
    tenant_max_inflight: usize,
    state: Mutex<State>,
    flush_cv: Condvar,
    stopped: AtomicBool,
    shards: Arc<Vec<ShardHandle>>,
    stats: Arc<ServerStats>,
    cache: Arc<PlanCache>,
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("window", &self.window)
            .field("batch_max", &self.batch_max)
            .field("tenant_max_inflight", &self.tenant_max_inflight)
            .finish_non_exhaustive()
    }
}

impl Coalescer {
    pub(crate) fn new(
        window: Duration,
        batch_max: usize,
        tenant_max_inflight: usize,
        shards: Arc<Vec<ShardHandle>>,
        stats: Arc<ServerStats>,
        cache: Arc<PlanCache>,
    ) -> Self {
        Self {
            window,
            batch_max: batch_max.max(1),
            tenant_max_inflight,
            state: Mutex::new(State::default()),
            flush_cv: Condvar::new(),
            stopped: AtomicBool::new(false),
            shards,
            stats,
            cache,
        }
    }

    /// Routes one `REQ_TRIP` job: cache hits are answered immediately,
    /// over-limit tenants are refused, everything else parks in the
    /// window. Flushes inline when the window reaches `batch_max`.
    pub(crate) fn submit(&self, job: Job) {
        let key = job.payload.to_vec();
        let waiter = Waiter {
            shard: job.shard,
            conn: job.conn,
            gen: job.gen,
            tenant: job.tenant,
        };
        if let Some(hit) = self.cache.read().get(&key) {
            let frame = hit.frame.clone();
            self.stats.record_served(1);
            self.stats.record_plan_cache_hits(1);
            self.stats.record_tenant_served(waiter.tenant);
            self.respond(&waiter, FrameBuf::Shared(frame));
            return;
        }
        let full = {
            let mut state = self.state.lock().expect("coalescer lock");
            if self.tenant_max_inflight > 0 {
                let pending = state
                    .tenant_pending
                    .get(&waiter.tenant)
                    .copied()
                    .unwrap_or(0);
                if pending >= self.tenant_max_inflight {
                    drop(state);
                    self.stats.record_tenant_rejected(waiter.tenant);
                    let frame = error_frame(
                        &self.stats,
                        &self.shards[waiter.shard].pool,
                        &format!("tenant {} over its admission limit", waiter.tenant),
                    );
                    self.respond(&waiter, frame);
                    return;
                }
            }
            *state.tenant_pending.entry(waiter.tenant).or_insert(0) += 1;
            let window = &mut state.window;
            match window.index.get(&key) {
                Some(&i) => window.groups[i].waiters.push(waiter),
                None => {
                    window.index.insert(key.clone(), window.groups.len());
                    window.groups.push(Group {
                        key,
                        payload: job.payload.clone(),
                        waiters: vec![waiter],
                    });
                }
            }
            window.waiters += 1;
            if window.deadline.is_none() {
                window.deadline = Some(Instant::now() + self.window);
                self.flush_cv.notify_one();
            }
            (window.waiters >= self.batch_max).then(|| Self::take(&mut state))
        };
        if let Some(window) = full {
            self.flush(window);
        }
    }

    /// Detaches the current window and releases its admission counts.
    fn take(state: &mut State) -> Window {
        let window = std::mem::take(&mut state.window);
        for group in &window.groups {
            for waiter in &group.waiters {
                if let Some(n) = state.tenant_pending.get_mut(&waiter.tenant) {
                    *n = n.saturating_sub(1);
                }
            }
        }
        window
    }

    /// The flusher thread body: sleep until the open window's deadline
    /// (or until `submit` opens one), then flush whatever `batch_max`
    /// has not already claimed.
    pub(crate) fn run_flusher(&self) {
        let mut state = self.state.lock().expect("coalescer lock");
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return;
            }
            match state.window.deadline {
                None => {
                    state = self.flush_cv.wait(state).expect("coalescer lock");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        let window = Self::take(&mut state);
                        drop(state);
                        self.flush(window);
                        state = self.state.lock().expect("coalescer lock");
                    } else {
                        state = self
                            .flush_cv
                            .wait_timeout(state, deadline - now)
                            .expect("coalescer lock")
                            .0;
                    }
                }
            }
        }
    }

    /// Wakes and terminates the flusher. Called at server shutdown after
    /// the workers have exited, so nothing submits afterwards.
    pub(crate) fn stop(&self) {
        let _guard = self.state.lock().expect("coalescer lock");
        self.stopped.store(true, Ordering::Release);
        self.flush_cv.notify_all();
    }

    /// Solves a detached window — one `optimize_batch` over its distinct
    /// keys — and fans each group's single encoded frame out to all of
    /// its waiters.
    fn flush(&self, window: Window) {
        if window.is_empty() {
            return;
        }
        let waiters_total = window.waiters as u64;
        let groups = window.groups;
        // Per-group outcome: the shared frame to fan out, or the error
        // message every waiter of the group receives.
        let mut outcomes: Vec<Option<std::result::Result<Bytes, String>>> =
            (0..groups.len()).map(|_| None).collect();

        // Late cache pass: a REQ_BATCH (or an earlier flush) may have
        // planned a group's trip since its first waiter parked.
        {
            let cache = self.cache.read();
            for (i, group) in groups.iter().enumerate() {
                if let Some(hit) = cache.get(&group.key) {
                    self.stats
                        .record_plan_cache_hits(group.waiters.len() as u64);
                    outcomes[i] = Some(Ok(hit.frame.clone()));
                }
            }
        }

        let mut flights = 0u64;
        match corridor_optimizer() {
            Ok(optimizer) => {
                // Decode and validate the misses; invalid trips become
                // error outcomes without sinking the window.
                let mut prepared: Vec<(usize, TripRequest, Vec<SignalConstraint>)> = Vec::new();
                for (i, group) in groups.iter().enumerate() {
                    if outcomes[i].is_some() {
                        continue;
                    }
                    let mut payload = group.payload.clone();
                    let decoded = TripRequest::decode(&mut payload).and_then(|trip| {
                        let constraints = trip_constraints(&trip, optimizer.config())?;
                        Ok((trip, constraints))
                    });
                    match decoded {
                        Ok((trip, constraints)) => prepared.push((i, trip, constraints)),
                        Err(e) => outcomes[i] = Some(Err(e.to_string())),
                    }
                }
                let requests: Vec<PlanRequest<'_>> = prepared
                    .iter()
                    .map(|(_, trip, constraints)| PlanRequest {
                        road: &trip.road,
                        signals: constraints,
                        start: StartState {
                            time: trip.departure,
                            ..StartState::default()
                        },
                    })
                    .collect();
                flights = requests.len() as u64;
                let plan_span = telemetry::span("cloud.plan_seconds");
                let planned = optimizer.optimize_batch(&requests);
                drop(plan_span);
                for ((i, _, _), result) in prepared.iter().zip(planned) {
                    match result {
                        Ok(profile) => {
                            self.stats.record_solve(&profile.metrics);
                            let frame = plan_frame(&profile);
                            self.cache.write().insert(
                                groups[*i].key.clone(),
                                CachedPlan {
                                    frame: frame.clone(),
                                    profile,
                                },
                            );
                            outcomes[*i] = Some(Ok(frame));
                        }
                        Err(e) => outcomes[*i] = Some(Err(e.to_string())),
                    }
                }
            }
            Err(e) => {
                let message = e.to_string();
                for outcome in &mut outcomes {
                    if outcome.is_none() {
                        *outcome = Some(Err(message.clone()));
                    }
                }
            }
        }
        self.stats
            .record_coalesce_flush(waiters_total, groups.len() as u64, flights);

        for (group, outcome) in groups.iter().zip(&outcomes) {
            match outcome.as_ref().expect("every group resolved") {
                Ok(frame) => {
                    self.stats.record_served(group.waiters.len() as u64);
                    for waiter in &group.waiters {
                        self.stats.record_tenant_served(waiter.tenant);
                        self.respond(waiter, FrameBuf::Shared(frame.clone()));
                    }
                }
                Err(message) => {
                    for waiter in &group.waiters {
                        let frame =
                            error_frame(&self.stats, &self.shards[waiter.shard].pool, message);
                        self.respond(waiter, frame);
                    }
                }
            }
        }
    }

    /// Queues a response frame back to a waiter's shard. A failed send
    /// means the shard exited (shutdown); the frame is dropped with it.
    fn respond(&self, waiter: &Waiter, frame: FrameBuf) {
        let shard = &self.shards[waiter.shard];
        let delivered = shard
            .tx
            .send(ShardMsg::Response {
                conn: waiter.conn,
                gen: waiter.gen,
                frame,
            })
            .is_ok();
        if delivered {
            let _ = shard.waker.wake();
        }
    }
}
