//! The vehicular-cloud wire format.
//!
//! Frames are length-prefixed: a 4-byte big-endian payload length, a 1-byte
//! message type, then the payload. All multi-byte integers and floats are
//! big-endian; sequences are a 4-byte count followed by the elements. The
//! format is explicit field-by-field encoding (like the TraCI layer) so the
//! wire is stable, compact, and independent of any serialization framework.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Seconds, VehiclesPerHour};
use velopt_common::{Error, Result};
use velopt_core::dp::OptimizedProfile;
use velopt_core::metrics::SolverMetrics;
use velopt_core::route::RoutePlan;
use velopt_queue::QueueParams;
use velopt_road::{EdgeId, NodeId, Road, RoadBuilder, RoadGraph, SpeedZone};

/// Message type tags.
pub mod tags {
    /// Vehicle → cloud: optimize this trip.
    pub const REQ_TRIP: u8 = 1;
    /// Cloud → vehicle: the optimized profile.
    pub const RESP_PROFILE: u8 = 2;
    /// Cloud → vehicle: the request failed; payload is a message string.
    pub const RESP_ERROR: u8 = 3;
    /// Vehicle/operator → cloud: report serving statistics.
    pub const REQ_STATS: u8 = 4;
    /// Cloud → requester: `(served, cache_hits)` counters.
    pub const RESP_STATS: u8 = 5;
    /// Fleet gateway → cloud: optimize a batch of independent trips.
    pub const REQ_BATCH: u8 = 6;
    /// Cloud → gateway: per-trip profiles/errors, in request order.
    pub const RESP_BATCH: u8 = 7;
    /// Operator → cloud: export the telemetry registry.
    pub const REQ_TELEMETRY: u8 = 8;
    /// Cloud → operator: the telemetry snapshot as UTF-8 JSON (empty
    /// `{"counters":[],"histograms":[]}` when the server was built without
    /// the `telemetry` feature).
    pub const RESP_TELEMETRY: u8 = 9;
    /// Vehicle/gateway → cloud: forecast arrival volumes for a batch of
    /// intersections over several lookahead horizons.
    pub const REQ_PREDICT_BATCH: u8 = 10;
    /// Cloud → requester: the forecast volumes, in request order.
    pub const RESP_PREDICT_BATCH: u8 = 11;
    /// Vehicle → cloud: declare the connection's tenant (fleet) identity.
    /// Payload is a 4-byte big-endian tenant id. Handled inline on the
    /// reactor shard — it never visits the compute pool — so it keeps the
    /// per-connection FIFO ordering with the frames around it. Connections
    /// that never send it belong to tenant 0.
    pub const REQ_HELLO: u8 = 12;
    /// Cloud → vehicle: the tenant id echoed back, confirming admission
    /// accounting is now attributed to it.
    pub const RESP_HELLO: u8 = 13;
    /// Vehicle → cloud: plan an energy-optimal route across a road graph
    /// (origin junction → destination junction), not just one corridor.
    pub const REQ_ROUTE: u8 = 14;
    /// Cloud → vehicle: the routed plan — the edge sequence plus the
    /// stitched velocity profile along it.
    pub const RESP_ROUTE: u8 = 15;
}

/// Encodes a `REQ_HELLO`/`RESP_HELLO` payload (a 4-byte big-endian tenant
/// id).
pub fn encode_hello(tenant: u32) -> [u8; 4] {
    tenant.to_be_bytes()
}

/// Decodes a `REQ_HELLO`/`RESP_HELLO` payload.
///
/// # Errors
///
/// Returns [`Error::Protocol`] when the payload is not exactly 4 bytes.
pub fn decode_hello(payload: &[u8]) -> Result<u32> {
    let raw: [u8; 4] = payload
        .try_into()
        .map_err(|_| Error::protocol("malformed hello payload"))?;
    Ok(u32::from_be_bytes(raw))
}

/// A trip uploaded by an EV: corridor geometry plus traffic state.
///
/// Departure time is on the corridor's signal clock (the same clock the
/// lights' offsets are defined on), so two EVs departing one full cycle
/// apart produce byte-identical requests — which is what makes the cloud's
/// plan cache effective.
#[derive(Debug, Clone, PartialEq)]
pub struct TripRequest {
    /// The corridor to drive.
    pub road: Road,
    /// Departure time on the signal clock.
    pub departure: Seconds,
    /// Predicted arrival rate per traffic light.
    pub rates: Vec<VehiclesPerHour>,
    /// Queue-model parameters (signal timing is taken from each light).
    pub queue: QueueParams,
    /// `true` = the paper's queue-aware windows; `false` = the prior
    /// green-only DP \[2\].
    pub queue_aware: bool,
}

impl TripRequest {
    /// The canonical US-25 rush-hour trip departing at `t` on the signal
    /// clock.
    pub fn us25_at(t: f64) -> Self {
        Self {
            road: Road::us25(),
            departure: Seconds::new(t),
            rates: vec![
                VehiclesPerHour::new(800.0),
                VehiclesPerHour::new(800.0 * 0.7636),
            ],
            queue: QueueParams::us25_probe(),
            queue_aware: true,
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on a rate/light arity mismatch or
    /// invalid queue parameters.
    pub fn validated(&self) -> Result<()> {
        if self.rates.len() != self.road.traffic_lights().len() {
            return Err(Error::invalid_input(format!(
                "{} rates for {} lights",
                self.rates.len(),
                self.road.traffic_lights().len()
            )));
        }
        self.queue.validated()?;
        if self.departure.value() < 0.0 {
            return Err(Error::invalid_input("departure must be non-negative"));
        }
        Ok(())
    }

    /// Encodes the request payload (without the frame header).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        encode_road(&self.road, &mut buf);
        buf.put_f64(self.departure.value());
        buf.put_u32(self.rates.len() as u32);
        for r in &self.rates {
            buf.put_f64(r.value());
        }
        encode_queue(&self.queue, &mut buf);
        buf.put_u8(u8::from(self.queue_aware));
        buf.freeze()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or malformed geometry.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let road = decode_road(buf)?;
        let departure = Seconds::new(take_f64(buf)?);
        let n = take_u32(buf)? as usize;
        if n > buf.remaining() / 8 {
            return Err(Error::protocol("implausible rate count"));
        }
        let mut rates = Vec::with_capacity(n);
        for _ in 0..n {
            rates.push(VehiclesPerHour::new(take_f64(buf)?));
        }
        let queue = decode_queue(buf)?;
        let queue_aware = take_u8(buf)? != 0;
        Ok(Self {
            road,
            departure,
            rates,
            queue,
            queue_aware,
        })
    }
}

/// The cloud's answer to a trip request.
// Responses are transient (decoded, consumed, dropped within one request
// round-trip); boxing the profile variant would trade one stack copy for
// a heap allocation on the serving hot path, which the buffer-pooled
// tier deliberately avoids.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CloudResponse {
    /// The optimized profile.
    Profile(OptimizedProfile),
    /// The request could not be served.
    Error(String),
    /// Serving statistics `(requests served, cache hits)`.
    Stats(u64, u64),
}

/// Encodes a profile payload (including its solver metrics, so the vehicle
/// can see what the cloud's solve cost).
pub fn encode_profile(profile: &OptimizedProfile, buf: &mut BytesMut) {
    buf.put_u32(profile.stations.len() as u32);
    for i in 0..profile.stations.len() {
        buf.put_f64(profile.stations[i].value());
        buf.put_f64(profile.speeds[i].value());
        buf.put_f64(profile.times[i].value());
    }
    buf.put_f64(profile.total_energy.value());
    buf.put_f64(profile.trip_time.value());
    buf.put_u32(profile.window_violations as u32);
    let m = &profile.metrics;
    buf.put_u64(m.states_expanded);
    buf.put_u64(m.states_pruned);
    buf.put_f64(m.setup_seconds);
    buf.put_f64(m.relax_seconds);
    buf.put_f64(m.backtrack_seconds);
    buf.put_u64(m.arena_reuse_hits);
    buf.put_u64(m.arena_allocations);
    buf.put_u64(m.memo_hits);
    buf.put_u64(m.memo_misses);
    buf.put_u64(m.energy_evals);
    buf.put_u64(m.rows_skipped);
    buf.put_u64(m.simd_rows);
    buf.put_u64(m.scalar_rows);
    buf.put_u64(m.repair_hits);
    buf.put_u64(m.repair_full_resolves);
    buf.put_u64(m.repair_layers_skipped);
    buf.put_u32(m.threads_used as u32);
}

/// Decodes a profile payload.
///
/// # Errors
///
/// Returns [`Error::Protocol`] on truncation or implausible lengths.
pub fn decode_profile(buf: &mut Bytes) -> Result<OptimizedProfile> {
    let n = take_u32(buf)? as usize;
    if n == 0 || n > buf.remaining() / 24 + 1 {
        return Err(Error::protocol("implausible station count"));
    }
    let mut stations = Vec::with_capacity(n);
    let mut speeds = Vec::with_capacity(n);
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        stations.push(Meters::new(take_f64(buf)?));
        speeds.push(MetersPerSecond::new(take_f64(buf)?));
        times.push(Seconds::new(take_f64(buf)?));
    }
    let total_energy = velopt_common::units::AmpereHours::new(take_f64(buf)?);
    let trip_time = Seconds::new(take_f64(buf)?);
    let window_violations = take_u32(buf)? as usize;
    let metrics = SolverMetrics {
        states_expanded: take_u64(buf)?,
        states_pruned: take_u64(buf)?,
        setup_seconds: take_f64(buf)?,
        relax_seconds: take_f64(buf)?,
        backtrack_seconds: take_f64(buf)?,
        arena_reuse_hits: take_u64(buf)?,
        arena_allocations: take_u64(buf)?,
        memo_hits: take_u64(buf)?,
        memo_misses: take_u64(buf)?,
        energy_evals: take_u64(buf)?,
        rows_skipped: take_u64(buf)?,
        simd_rows: take_u64(buf)?,
        scalar_rows: take_u64(buf)?,
        repair_hits: take_u64(buf)?,
        repair_full_resolves: take_u64(buf)?,
        repair_layers_skipped: take_u64(buf)?,
        threads_used: take_u32(buf)? as usize,
    };
    Ok(OptimizedProfile {
        stations,
        speeds,
        times,
        total_energy,
        trip_time,
        window_violations,
        metrics,
    })
}

/// A batch of independent trip uploads planned in one round trip — the
/// fleet-gateway path: one frame in, one frame out, the cloud fans the
/// plans out across its cores.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchPlanRequest {
    /// The trips to plan, each exactly as it would appear in a `REQ_TRIP`.
    pub trips: Vec<TripRequest>,
}

/// Per-trip ceiling on batch size (keeps a hostile count from allocating).
pub const MAX_BATCH_TRIPS: usize = 1024;

impl BatchPlanRequest {
    /// Encodes the batch payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.trips.len() as u32);
        for trip in &self.trips {
            buf.extend_from_slice(&trip.encode());
        }
        buf.freeze()
    }

    /// Decodes a batch payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation, a malformed trip, or an
    /// implausible trip count.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let n = bounded_count(buf, MAX_BATCH_TRIPS)?;
        let mut trips = Vec::with_capacity(n);
        for _ in 0..n {
            trips.push(TripRequest::decode(buf)?);
        }
        Ok(Self { trips })
    }
}

/// The cloud's per-trip answers to a [`BatchPlanRequest`], in request
/// order: a profile where planning succeeded, the error message where it
/// did not (one bad trip never sinks its batch-mates).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlanResponse {
    /// One entry per requested trip, in order.
    pub results: Vec<std::result::Result<OptimizedProfile, String>>,
}

impl BatchPlanResponse {
    /// Encodes the batch-response payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes the batch-response payload into an existing buffer (the
    /// reactor's pooled-buffer path; same bytes as [`Self::encode`]).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.results.len() as u32);
        for result in &self.results {
            match result {
                Ok(profile) => {
                    buf.put_u8(1);
                    encode_profile(profile, buf);
                }
                Err(message) => {
                    buf.put_u8(0);
                    let raw = message.as_bytes();
                    buf.put_u32(raw.len() as u32);
                    buf.extend_from_slice(raw);
                }
            }
        }
    }

    /// Decodes a batch-response payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or malformed entries.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let n = bounded_count(buf, MAX_BATCH_TRIPS)?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            match take_u8(buf)? {
                1 => results.push(Ok(decode_profile(buf)?)),
                0 => {
                    let len = take_u32(buf)? as usize;
                    if len > buf.remaining() {
                        return Err(Error::protocol("truncated batch error message"));
                    }
                    let raw = buf.split_to(len);
                    results.push(Err(String::from_utf8_lossy(&raw).into_owned()));
                }
                other => {
                    return Err(Error::protocol(format!(
                        "unknown batch entry marker {other}"
                    )))
                }
            }
        }
        Ok(Self { results })
    }
}

/// One intersection's forecasting state inside a [`PredictBatchRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PredictQuery {
    /// The most recent hourly volumes at this intersection, oldest first.
    /// Every query in a batch must use the same window length (it selects
    /// the predictor's lag count).
    pub history: Vec<f64>,
    /// Global hour index (hour 0 = Monday 00:00) of the first forecast
    /// hour.
    pub hour_index: u64,
}

/// Ceiling on intersections per predict batch.
pub const MAX_PREDICT_QUERIES: usize = 256;
/// Ceiling on lag-window length (one week of hourly volumes).
pub const MAX_PREDICT_LAGS: usize = 168;
/// Ceiling on lookahead horizons (one week of hourly forecasts).
pub const MAX_PREDICT_HORIZONS: usize = 168;

/// A batched volume-forecast request: all lookahead horizons for N
/// intersections in one round trip, served by the cloud's SAE predictor
/// cache. `station_seed`/`train_weeks` identify the feed the predictor is
/// trained on (the synthetic station substrate — see `velopt-traffic`).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictBatchRequest {
    /// Seed of the volume station whose predictor should answer.
    pub station_seed: u64,
    /// Weeks of history the cloud trains that predictor on.
    pub train_weeks: u32,
    /// Consecutive hours to forecast for every query.
    pub horizons: u32,
    /// The intersections to forecast.
    pub queries: Vec<PredictQuery>,
}

impl PredictBatchRequest {
    /// Validates bounds and the uniform-lag invariant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when a ceiling is exceeded, the
    /// training window is degenerate, or the queries disagree on their
    /// history length.
    pub fn validated(&self) -> Result<()> {
        if self.train_weeks == 0 || self.train_weeks > 52 {
            return Err(Error::invalid_input("train_weeks must be between 1 and 52"));
        }
        if self.horizons as usize > MAX_PREDICT_HORIZONS {
            return Err(Error::invalid_input(format!(
                "horizons {} exceeds bound {MAX_PREDICT_HORIZONS}",
                self.horizons
            )));
        }
        if self.queries.len() > MAX_PREDICT_QUERIES {
            return Err(Error::invalid_input(format!(
                "{} queries exceed bound {MAX_PREDICT_QUERIES}",
                self.queries.len()
            )));
        }
        let lags = self.queries.first().map_or(1, |q| q.history.len());
        for (i, q) in self.queries.iter().enumerate() {
            if q.history.is_empty() || q.history.len() > MAX_PREDICT_LAGS {
                return Err(Error::invalid_input(format!(
                    "query {i}: history length {} outside 1..={MAX_PREDICT_LAGS}",
                    q.history.len()
                )));
            }
            if q.history.len() != lags {
                return Err(Error::invalid_input(format!(
                    "query {i}: history length {} disagrees with {lags}",
                    q.history.len()
                )));
            }
        }
        Ok(())
    }

    /// Encodes the request payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64(self.station_seed);
        buf.put_u32(self.train_weeks);
        buf.put_u32(self.horizons);
        buf.put_u32(self.queries.len() as u32);
        for q in &self.queries {
            buf.put_u64(q.hour_index);
            buf.put_u32(q.history.len() as u32);
            for &v in &q.history {
                buf.put_f64(v);
            }
        }
        buf.freeze()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or implausible counts.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let station_seed = take_u64(buf)?;
        let train_weeks = take_u32(buf)?;
        let horizons = take_u32(buf)?;
        let n = bounded_count(buf, MAX_PREDICT_QUERIES)?;
        let mut queries = Vec::with_capacity(n);
        for _ in 0..n {
            let hour_index = take_u64(buf)?;
            let lags = bounded_count(buf, MAX_PREDICT_LAGS)?;
            if lags > buf.remaining() / 8 {
                return Err(Error::protocol("truncated predict history"));
            }
            let mut history = Vec::with_capacity(lags);
            for _ in 0..lags {
                history.push(take_f64(buf)?);
            }
            queries.push(PredictQuery {
                history,
                hour_index,
            });
        }
        Ok(Self {
            station_seed,
            train_weeks,
            horizons,
            queries,
        })
    }
}

/// The cloud's answer to a [`PredictBatchRequest`]: `volumes[q][s]` is the
/// forecast (vehicles/hour) for query `q` at its `hour_index + s`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PredictBatchResponse {
    /// One row of `horizons` forecasts per query, in request order.
    pub volumes: Vec<Vec<f64>>,
}

impl PredictBatchResponse {
    /// Encodes the response payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes the response payload into an existing buffer (the reactor's
    /// pooled-buffer path; same bytes as [`Self::encode`]).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.volumes.len() as u32);
        let horizons = self.volumes.first().map_or(0, Vec::len);
        buf.put_u32(horizons as u32);
        for row in &self.volumes {
            for &v in row {
                buf.put_f64(v);
            }
        }
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or implausible counts.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let n = bounded_count(buf, MAX_PREDICT_QUERIES)?;
        let horizons = bounded_count(buf, MAX_PREDICT_HORIZONS)?;
        if n * horizons > buf.remaining() / 8 {
            return Err(Error::protocol("truncated predict response"));
        }
        let mut volumes = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(horizons);
            for _ in 0..horizons {
                row.push(take_f64(buf)?);
            }
            volumes.push(row);
        }
        Ok(Self { volumes })
    }
}

/// Ceiling on route-graph junction counts (keeps a hostile node count from
/// allocating adjacency storage).
pub const MAX_ROUTE_NODES: usize = 4096;

/// Ceiling on route-graph edge counts.
pub const MAX_ROUTE_EDGES: usize = 16_384;

/// A routing query uploaded by an EV: the road graph (junctions plus
/// directed corridor edges) and the `origin → dest` trip to plan across it.
///
/// Like [`TripRequest`], the departure time is on the network's shared
/// signal clock, so two EVs asking for the same trip in the same signal
/// cycle produce byte-identical requests — which is what makes the cloud's
/// route-frame cache effective.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteNetRequest {
    /// Junction count; edge endpoints index `0..nodes`.
    pub nodes: u32,
    /// Directed corridor edges as `(from, to, road)`.
    pub edges: Vec<(u32, u32, Road)>,
    /// Start junction.
    pub origin: u32,
    /// Goal junction.
    pub dest: u32,
    /// Departure time on the signal clock.
    pub depart: Seconds,
}

impl RouteNetRequest {
    /// Captures a whole [`RoadGraph`] plus a query against it.
    pub fn from_graph(graph: &RoadGraph, origin: NodeId, dest: NodeId, depart: Seconds) -> Self {
        Self {
            nodes: graph.node_count() as u32,
            edges: graph
                .edges()
                .iter()
                .map(|e| (e.from().0, e.to().0, e.road().clone()))
                .collect(),
            origin: origin.0,
            dest: dest.0,
            depart,
        }
    }

    /// Validates the graph shape and query endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when counts exceed the protocol
    /// ceilings, an edge endpoint or query junction is out of range,
    /// `origin == dest`, or the departure is negative.
    pub fn validated(&self) -> Result<()> {
        if self.nodes < 2 || self.nodes as usize > MAX_ROUTE_NODES {
            return Err(Error::invalid_input(format!(
                "route graph needs 2..={MAX_ROUTE_NODES} junctions, got {}",
                self.nodes
            )));
        }
        if self.edges.len() > MAX_ROUTE_EDGES {
            return Err(Error::invalid_input(format!(
                "{} edges exceed bound {MAX_ROUTE_EDGES}",
                self.edges.len()
            )));
        }
        for (i, &(from, to, _)) in self.edges.iter().enumerate() {
            if from >= self.nodes || to >= self.nodes {
                return Err(Error::invalid_input(format!(
                    "edge {i} endpoint ({from} -> {to}) outside 0..{}",
                    self.nodes
                )));
            }
        }
        if self.origin >= self.nodes || self.dest >= self.nodes {
            return Err(Error::invalid_input("query junction outside the graph"));
        }
        if self.origin == self.dest {
            return Err(Error::invalid_input("origin and destination coincide"));
        }
        if self.depart.value() < 0.0 {
            return Err(Error::invalid_input("departure must be non-negative"));
        }
        Ok(())
    }

    /// Validates and rebuilds the [`RoadGraph`] this request describes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] from [`Self::validated`] or graph
    /// construction (e.g. a self-loop edge).
    pub fn to_graph(&self) -> Result<RoadGraph> {
        self.validated()?;
        let mut graph = RoadGraph::new(self.nodes as usize)?;
        for &(from, to, ref road) in &self.edges {
            graph.add_edge(NodeId(from), NodeId(to), road.clone())?;
        }
        Ok(graph)
    }

    /// Encodes the request payload (without the frame header).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.nodes);
        buf.put_u32(self.origin);
        buf.put_u32(self.dest);
        buf.put_f64(self.depart.value());
        buf.put_u32(self.edges.len() as u32);
        for &(from, to, ref road) in &self.edges {
            buf.put_u32(from);
            buf.put_u32(to);
            encode_road(road, &mut buf);
        }
        buf.freeze()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation, implausible counts, or
    /// malformed corridor geometry.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let nodes = take_u32(buf)?;
        let origin = take_u32(buf)?;
        let dest = take_u32(buf)?;
        let depart = Seconds::new(take_f64(buf)?);
        let n = bounded_count(buf, MAX_ROUTE_EDGES)?;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            let from = take_u32(buf)?;
            let to = take_u32(buf)?;
            edges.push((from, to, decode_road(buf)?));
        }
        Ok(Self {
            nodes,
            edges,
            origin,
            dest,
            depart,
        })
    }
}

/// The cloud's answer to a route query: the chosen edge sequence and the
/// stitched velocity profile along it, on the absolute signal clock.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteNetResponse {
    /// Edge ids of the chosen route, in driving order.
    pub edges: Vec<u32>,
    /// The blended objective the route minimizes.
    pub cost: f64,
    /// Battery charge drawn over the whole route.
    pub total_energy: velopt_common::units::AmpereHours,
    /// Departure time (echoed from the query).
    pub depart: Seconds,
    /// Arrival time at the destination.
    pub arrival: Seconds,
    /// Queue-window violations summed over the route.
    pub window_violations: u32,
    /// Cumulative station samples from origin to destination.
    pub stations: Vec<Meters>,
    /// Speed at each station sample.
    pub speeds: Vec<MetersPerSecond>,
    /// Clock time at each station sample.
    pub times: Vec<Seconds>,
}

impl RouteNetResponse {
    /// Captures a routed plan for the wire (the search metrics stay on the
    /// server, aggregated into its `route.*` counters).
    pub fn from_plan(plan: &RoutePlan) -> Self {
        Self {
            edges: plan.edges.iter().map(|e| e.0).collect(),
            cost: plan.cost,
            total_energy: plan.total_energy,
            depart: plan.depart,
            arrival: plan.arrival,
            window_violations: plan.window_violations as u32,
            stations: plan.stations.clone(),
            speeds: plan.speeds.clone(),
            times: plan.times.clone(),
        }
    }

    /// The edge ids as typed [`EdgeId`]s.
    pub fn edge_ids(&self) -> Vec<EdgeId> {
        self.edges.iter().map(|&e| EdgeId(e)).collect()
    }

    /// Encodes the response payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes the response payload directly into `buf` (the server's
    /// zero-copy framing path).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.edges.len() as u32);
        for &e in &self.edges {
            buf.put_u32(e);
        }
        buf.put_f64(self.cost);
        buf.put_f64(self.total_energy.value());
        buf.put_f64(self.depart.value());
        buf.put_f64(self.arrival.value());
        buf.put_u32(self.window_violations);
        buf.put_u32(self.stations.len() as u32);
        for i in 0..self.stations.len() {
            buf.put_f64(self.stations[i].value());
            buf.put_f64(self.speeds[i].value());
            buf.put_f64(self.times[i].value());
        }
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on truncation or implausible counts.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        let n = bounded_count(buf, MAX_ROUTE_EDGES)?;
        if n == 0 || n > buf.remaining() / 4 {
            return Err(Error::protocol("implausible route edge count"));
        }
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push(take_u32(buf)?);
        }
        let cost = take_f64(buf)?;
        let total_energy = velopt_common::units::AmpereHours::new(take_f64(buf)?);
        let depart = Seconds::new(take_f64(buf)?);
        let arrival = Seconds::new(take_f64(buf)?);
        let window_violations = take_u32(buf)?;
        let samples = take_u32(buf)? as usize;
        if samples == 0 || samples > buf.remaining() / 24 + 1 {
            return Err(Error::protocol("implausible route sample count"));
        }
        let mut stations = Vec::with_capacity(samples);
        let mut speeds = Vec::with_capacity(samples);
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            stations.push(Meters::new(take_f64(buf)?));
            speeds.push(MetersPerSecond::new(take_f64(buf)?));
            times.push(Seconds::new(take_f64(buf)?));
        }
        Ok(Self {
            edges,
            cost,
            total_energy,
            depart,
            arrival,
            window_violations,
            stations,
            speeds,
            times,
        })
    }
}

/// Encodes one complete frame (length prefix, tag, payload) in place at the
/// end of `buf` — the reactor's zero-copy path. `fill` writes the payload
/// directly into `buf` and the 4-byte big-endian length is patched in
/// afterwards, so no intermediate payload buffer is allocated or copied.
/// The bytes produced are identical to [`write_frame`]'s.
pub fn encode_frame_into(buf: &mut BytesMut, tag: u8, fill: impl FnOnce(&mut BytesMut)) {
    let header_at = buf.len();
    buf.put_u32(0); // length placeholder, patched below
    buf.put_u8(tag);
    fill(buf);
    let frame_len = (buf.len() - header_at - 4) as u32;
    buf[header_at..header_at + 4].copy_from_slice(&frame_len.to_be_bytes());
}

/// Writes one frame (`type` + payload) to a blocking writer.
///
/// # Errors
///
/// Returns [`Error::Io`] on write failures.
pub fn write_frame(writer: &mut impl std::io::Write, tag: u8, payload: &[u8]) -> Result<()> {
    let mut header = BytesMut::with_capacity(5);
    header.put_u32(payload.len() as u32 + 1);
    header.put_u8(tag);
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame; returns `(type, payload)`, or `None` on a clean EOF at
/// a frame boundary.
///
/// # Errors
///
/// Returns [`Error::Io`]/[`Error::Protocol`] on failures.
pub fn read_frame(reader: &mut impl std::io::Read) -> Result<Option<(u8, Bytes)>> {
    let mut header = [0u8; 4];
    match reader.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 || len > 64 * 1024 * 1024 {
        return Err(Error::protocol(format!("implausible frame length {len}")));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let mut bytes = Bytes::from(body);
    let tag = take_u8(&mut bytes)?;
    Ok(Some((tag, bytes)))
}

fn encode_road(road: &Road, buf: &mut BytesMut) {
    buf.put_f64(road.length().value());
    let (lo, hi) = road.default_limits();
    buf.put_f64(lo.value());
    buf.put_f64(hi.value());
    buf.put_u32(road.speed_zones().len() as u32);
    for z in road.speed_zones() {
        buf.put_f64(z.start.value());
        buf.put_f64(z.end.value());
        buf.put_f64(z.min.value());
        buf.put_f64(z.max.value());
    }
    buf.put_u32(road.stop_signs().len() as u32);
    for s in road.stop_signs() {
        buf.put_f64(s.position.value());
    }
    buf.put_u32(road.traffic_lights().len() as u32);
    for l in road.traffic_lights() {
        buf.put_f64(l.position().value());
        buf.put_f64(l.red().value());
        buf.put_f64(l.green().value());
        buf.put_f64(l.offset().value());
    }
    let knots = road.grade_percent_profile().knots();
    buf.put_u32(knots.len() as u32);
    for &(x, g) in knots {
        buf.put_f64(x);
        buf.put_f64(g);
    }
}

fn decode_road(buf: &mut Bytes) -> Result<Road> {
    let length = take_f64(buf)?;
    let lo = take_f64(buf)?;
    let hi = take_f64(buf)?;
    let mut builder = RoadBuilder::new(Meters::new(length));
    builder.default_limits(MetersPerSecond::new(lo), MetersPerSecond::new(hi));

    let zones = bounded_count(buf, 32)?;
    for _ in 0..zones {
        builder.speed_zone(SpeedZone {
            start: Meters::new(take_f64(buf)?),
            end: Meters::new(take_f64(buf)?),
            min: MetersPerSecond::new(take_f64(buf)?),
            max: MetersPerSecond::new(take_f64(buf)?),
        });
    }
    let signs = bounded_count(buf, 8)?;
    for _ in 0..signs {
        builder.stop_sign(Meters::new(take_f64(buf)?));
    }
    let lights = bounded_count(buf, 32)?;
    for _ in 0..lights {
        builder.traffic_light(
            Meters::new(take_f64(buf)?),
            Seconds::new(take_f64(buf)?),
            Seconds::new(take_f64(buf)?),
            Seconds::new(take_f64(buf)?),
        );
    }
    let knots = bounded_count(buf, 256)?;
    for _ in 0..knots {
        let x = take_f64(buf)?;
        let g = take_f64(buf)?;
        builder.grade_knot(Meters::new(x), g);
    }
    builder
        .build()
        .map_err(|e| Error::protocol(format!("road rejected: {e}")))
}

fn encode_queue(queue: &QueueParams, buf: &mut BytesMut) {
    buf.put_f64(queue.arrival_rate.value());
    buf.put_f64(queue.spacing.value());
    buf.put_f64(queue.straight_ratio);
    buf.put_f64(queue.v_min.value());
    buf.put_f64(queue.a_max.value());
    buf.put_f64(queue.red.value());
    buf.put_f64(queue.green.value());
}

fn decode_queue(buf: &mut Bytes) -> Result<QueueParams> {
    Ok(QueueParams {
        arrival_rate: VehiclesPerHour::new(take_f64(buf)?),
        spacing: Meters::new(take_f64(buf)?),
        straight_ratio: take_f64(buf)?,
        v_min: MetersPerSecond::new(take_f64(buf)?),
        a_max: MetersPerSecondSq::new(take_f64(buf)?),
        red: Seconds::new(take_f64(buf)?),
        green: Seconds::new(take_f64(buf)?),
    })
}

fn bounded_count(buf: &mut Bytes, max: usize) -> Result<usize> {
    let n = take_u32(buf)? as usize;
    if n > max {
        return Err(Error::protocol(format!("count {n} exceeds bound {max}")));
    }
    Ok(n)
}

fn take_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::protocol("unexpected end of frame"));
    }
    Ok(buf.get_u8())
}

fn take_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::protocol("unexpected end of frame"));
    }
    Ok(buf.get_u32())
}

fn take_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::protocol("unexpected end of frame"));
    }
    Ok(buf.get_u64())
}

fn take_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(Error::protocol("unexpected end of frame"));
    }
    Ok(buf.get_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_road::CorridorTemplate;

    #[test]
    fn request_round_trip_us25() {
        let req = TripRequest::us25_at(60.0);
        let encoded = req.encode();
        let mut bytes = encoded.clone();
        let back = TripRequest::decode(&mut bytes).unwrap();
        assert_eq!(back, req);
        assert!(bytes.is_empty(), "decoder must consume the whole payload");
    }

    #[test]
    fn request_round_trip_generated_corridors() {
        for seed in 0..10 {
            let road = CorridorTemplate::default().generate(seed).unwrap();
            let rates = vec![VehiclesPerHour::new(250.0); road.traffic_lights().len()];
            let req = TripRequest {
                road,
                departure: Seconds::new(12.5),
                rates,
                queue: QueueParams::us25_probe(),
                queue_aware: false,
            };
            let mut bytes = req.encode();
            assert_eq!(TripRequest::decode(&mut bytes).unwrap(), req);
        }
    }

    #[test]
    fn validation_catches_arity() {
        let mut req = TripRequest::us25_at(0.0);
        req.rates.pop();
        assert!(req.validated().is_err());
        let mut req = TripRequest::us25_at(0.0);
        req.departure = Seconds::new(-1.0);
        assert!(req.validated().is_err());
    }

    #[test]
    fn truncated_request_rejected() {
        let encoded = TripRequest::us25_at(0.0).encode();
        let mut truncated = encoded.slice(0..encoded.len() / 2);
        assert!(TripRequest::decode(&mut truncated).is_err());
    }

    #[test]
    fn frame_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tags::REQ_STATS, &[1, 2, 3]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (tag, payload) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(tag, tags::REQ_STATS);
        assert_eq!(&payload[..], &[1, 2, 3]);
        // Clean EOF at the frame boundary -> None.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn encode_frame_into_matches_write_frame() {
        // Same bytes as the blocking writer, for an empty and a non-empty
        // payload, and appending after existing content patches the right
        // length slot.
        for payload in [&[][..], &[9u8, 8, 7, 6, 5][..]] {
            let mut blocking = Vec::new();
            write_frame(&mut blocking, tags::RESP_ERROR, payload).unwrap();
            let mut reactor = BytesMut::new();
            encode_frame_into(&mut reactor, tags::RESP_ERROR, |b| {
                b.extend_from_slice(payload)
            });
            assert_eq!(&reactor[..], &blocking[..]);
        }
        let mut buf = BytesMut::new();
        encode_frame_into(&mut buf, tags::RESP_STATS, |b| b.put_u64(1));
        encode_frame_into(&mut buf, tags::RESP_ERROR, |b| b.extend_from_slice(b"x"));
        let mut expected = Vec::new();
        write_frame(&mut expected, tags::RESP_STATS, &1u64.to_be_bytes()).unwrap();
        write_frame(&mut expected, tags::RESP_ERROR, b"x").unwrap();
        assert_eq!(&buf[..], &expected[..]);
    }

    #[test]
    fn hostile_counts_rejected() {
        // A zone count of 10^9 must not allocate.
        let mut buf = BytesMut::new();
        buf.put_f64(1000.0);
        buf.put_f64(10.0);
        buf.put_f64(20.0);
        buf.put_u32(1_000_000_000);
        let mut bytes = buf.freeze();
        assert!(decode_road(&mut bytes).is_err());
    }

    #[test]
    fn profile_round_trip() {
        use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        let profile = system.optimize().unwrap();
        let mut buf = BytesMut::new();
        encode_profile(&profile, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_profile(&mut bytes).unwrap();
        assert_eq!(back, profile);
        // Metrics travel too (equality above deliberately ignores them).
        assert_eq!(back.metrics, profile.metrics);
        assert!(bytes.is_empty(), "decoder must consume the whole payload");
    }

    #[test]
    fn batch_request_round_trip() {
        let batch = BatchPlanRequest {
            trips: vec![
                TripRequest::us25_at(0.0),
                TripRequest::us25_at(60.0),
                TripRequest::us25_at(120.0),
            ],
        };
        let mut bytes = batch.encode();
        let back = BatchPlanRequest::decode(&mut bytes).unwrap();
        assert_eq!(back, batch);
        assert!(bytes.is_empty());
        // Empty batch is legal on the wire.
        let mut empty = BatchPlanRequest::default().encode();
        assert!(BatchPlanRequest::decode(&mut empty)
            .unwrap()
            .trips
            .is_empty());
    }

    #[test]
    fn batch_response_round_trip_mixes_profiles_and_errors() {
        use velopt_core::pipeline::{SystemConfig, VelocityOptimizationSystem};
        let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
        let profile = system.optimize().unwrap();
        let response = BatchPlanResponse {
            results: vec![
                Ok(profile.clone()),
                Err("2 rates for 3 lights".to_string()),
                Ok(profile),
            ],
        };
        let mut bytes = response.encode();
        let back = BatchPlanResponse::decode(&mut bytes).unwrap();
        assert_eq!(back, response);
        assert!(bytes.is_empty());
    }

    #[test]
    fn predict_batch_round_trip() {
        let request = PredictBatchRequest {
            station_seed: 0x9E37,
            train_weeks: 2,
            horizons: 4,
            queries: vec![
                PredictQuery {
                    history: vec![120.0, 340.0, 510.0],
                    hour_index: 168,
                },
                PredictQuery {
                    history: vec![80.0, 95.0, 400.0],
                    hour_index: 7,
                },
            ],
        };
        request.validated().unwrap();
        let mut bytes = request.encode();
        let back = PredictBatchRequest::decode(&mut bytes).unwrap();
        assert_eq!(back, request);
        assert!(bytes.is_empty(), "decoder must consume the whole payload");

        let response = PredictBatchResponse {
            volumes: vec![
                vec![101.5, 99.0, 87.25, 412.0],
                vec![55.0, 56.5, 58.0, 60.0],
            ],
        };
        let mut bytes = response.encode();
        let back = PredictBatchResponse::decode(&mut bytes).unwrap();
        assert_eq!(back, response);
        assert!(bytes.is_empty());
        // Empty response round-trips too.
        let mut empty = PredictBatchResponse::default().encode();
        assert!(PredictBatchResponse::decode(&mut empty)
            .unwrap()
            .volumes
            .is_empty());
    }

    #[test]
    fn predict_batch_validation_catches_bad_requests() {
        let base = PredictBatchRequest {
            station_seed: 1,
            train_weeks: 2,
            horizons: 2,
            queries: vec![PredictQuery {
                history: vec![10.0; 4],
                hour_index: 0,
            }],
        };
        assert!(base.validated().is_ok());
        let mut r = base.clone();
        r.train_weeks = 0;
        assert!(r.validated().is_err());
        let mut r = base.clone();
        r.horizons = MAX_PREDICT_HORIZONS as u32 + 1;
        assert!(r.validated().is_err());
        let mut r = base.clone();
        r.queries.push(PredictQuery {
            history: vec![1.0; 5], // disagreeing lag window
            hour_index: 3,
        });
        assert!(r.validated().is_err());
        let mut r = base;
        r.queries[0].history.clear();
        assert!(r.validated().is_err());
    }

    #[test]
    fn hostile_predict_counts_rejected() {
        // Query count bound.
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        buf.put_u32(2);
        buf.put_u32(2);
        buf.put_u32(1_000_000_000);
        let mut bytes = buf.freeze();
        assert!(PredictBatchRequest::decode(&mut bytes).is_err());
        // History length larger than the remaining payload.
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        buf.put_u32(2);
        buf.put_u32(2);
        buf.put_u32(1);
        buf.put_u64(0);
        buf.put_u32(100); // claims 100 lags, carries none
        let mut bytes = buf.freeze();
        assert!(PredictBatchRequest::decode(&mut bytes).is_err());
        // Response plane larger than the payload.
        let mut buf = BytesMut::new();
        buf.put_u32(200);
        buf.put_u32(100);
        let mut bytes = buf.freeze();
        assert!(PredictBatchResponse::decode(&mut bytes).is_err());
    }

    #[test]
    fn hello_round_trip_and_malformed_payloads() {
        for tenant in [0u32, 1, 7, u32::MAX] {
            assert_eq!(decode_hello(&encode_hello(tenant)).unwrap(), tenant);
        }
        assert!(decode_hello(&[]).is_err());
        assert!(decode_hello(&[1, 2, 3]).is_err());
        assert!(decode_hello(&[1, 2, 3, 4, 5]).is_err());
    }

    #[test]
    fn hostile_batch_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(1_000_000_000);
        let mut bytes = buf.freeze();
        assert!(BatchPlanRequest::decode(&mut bytes).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_u8(9); // unknown entry marker
        let mut bytes = buf.freeze();
        assert!(BatchPlanResponse::decode(&mut bytes).is_err());
    }

    fn demo_route_request() -> RouteNetRequest {
        let template = CorridorTemplate {
            length: (200.0, 400.0),
            lights: (0, 1),
            phase: (15.0, 25.0),
            stop_sign_probability: 0.3,
            max_grade_percent: 0.0,
            limits_kmh: (30.0, 50.0),
        };
        let mut graph = RoadGraph::new(3).unwrap();
        graph
            .add_edge(NodeId(0), NodeId(1), template.generate(1).unwrap())
            .unwrap();
        graph
            .add_edge(NodeId(1), NodeId(2), template.generate(2).unwrap())
            .unwrap();
        graph
            .add_edge(NodeId(0), NodeId(2), template.generate(3).unwrap())
            .unwrap();
        RouteNetRequest::from_graph(&graph, NodeId(0), NodeId(2), Seconds::new(12.0))
    }

    #[test]
    fn route_request_round_trip() {
        let request = demo_route_request();
        request.validated().unwrap();
        let mut encoded = Bytes::from(request.encode().to_vec());
        let decoded = RouteNetRequest::decode(&mut encoded).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(encoded.remaining(), 0, "payload fully consumed");
        // The rebuilt graph matches the captured one edge-for-edge.
        let graph = decoded.to_graph().unwrap();
        assert_eq!(graph.node_count(), 3);
        assert_eq!(graph.edge_count(), 3);
        assert_eq!(graph.edge(EdgeId(1)).road(), &request.edges[1].2);
    }

    #[test]
    fn route_request_validation_rejects_bad_shapes() {
        let mut r = demo_route_request();
        r.origin = 2;
        assert!(r.validated().unwrap_err().to_string().contains("coincide"));
        let mut r = demo_route_request();
        r.dest = 9;
        assert!(r.validated().is_err());
        let mut r = demo_route_request();
        r.nodes = 1;
        assert!(r.validated().is_err()); // edge endpoints now out of range too
        let mut r = demo_route_request();
        r.depart = Seconds::new(-1.0);
        assert!(r.validated().is_err());
        let mut r = demo_route_request();
        r.nodes = MAX_ROUTE_NODES as u32 + 1;
        assert!(r.validated().unwrap_err().to_string().contains("junction"));
    }

    #[test]
    fn route_response_round_trip() {
        let response = RouteNetResponse {
            edges: vec![0, 2, 5],
            cost: 3.75,
            total_energy: velopt_common::units::AmpereHours::new(0.42),
            depart: Seconds::new(12.0),
            arrival: Seconds::new(97.5),
            window_violations: 1,
            stations: vec![Meters::ZERO, Meters::new(150.0), Meters::new(300.0)],
            speeds: vec![
                MetersPerSecond::ZERO,
                MetersPerSecond::new(9.5),
                MetersPerSecond::ZERO,
            ],
            times: vec![Seconds::new(12.0), Seconds::new(40.0), Seconds::new(97.5)],
        };
        let mut encoded = Bytes::from(response.encode().to_vec());
        let decoded = RouteNetResponse::decode(&mut encoded).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(encoded.remaining(), 0);
        assert_eq!(decoded.edge_ids(), vec![EdgeId(0), EdgeId(2), EdgeId(5)]);
    }

    #[test]
    fn hostile_route_counts_rejected() {
        // Edge count past the ceiling.
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_u32(0);
        buf.put_u32(2);
        buf.put_f64(0.0);
        buf.put_u32(1_000_000_000);
        let mut bytes = buf.freeze();
        assert!(RouteNetRequest::decode(&mut bytes).is_err());
        // Response claiming more edges than the payload carries.
        let mut buf = BytesMut::new();
        buf.put_u32(10_000);
        buf.put_u32(7);
        let mut bytes = buf.freeze();
        assert!(RouteNetResponse::decode(&mut bytes).is_err());
        // Response claiming more samples than the payload carries.
        let ok = RouteNetResponse {
            edges: vec![0],
            cost: 0.0,
            total_energy: velopt_common::units::AmpereHours::new(0.0),
            depart: Seconds::ZERO,
            arrival: Seconds::ZERO,
            window_violations: 0,
            stations: vec![Meters::ZERO],
            speeds: vec![MetersPerSecond::ZERO],
            times: vec![Seconds::ZERO],
        };
        let full = ok.encode().to_vec();
        let mut truncated = Bytes::from(full[..full.len() - 8].to_vec());
        assert!(RouteNetResponse::decode(&mut truncated).is_err());
    }
}
