//! The **vehicular cloud** optimization service.
//!
//! The paper's introduction frames deployment through the vehicular-cloud
//! computing model of \[6\], \[7\]: velocity-profile optimization is too heavy
//! for in-vehicle hardware, so *"each vehicle uploads its state (starting
//! time and route) to the cloud through wireless communication, and then
//! the cloud calculates the optimal velocity profile for the vehicle"*.
//! This crate implements that service:
//!
//! * [`protocol`] — a compact binary wire format (length-prefixed frames,
//!   explicit field encoding; no self-describing serialization on the wire)
//!   carrying the trip request — corridor geometry, departure time,
//!   per-light arrival rates, queue parameters — and the optimized profile
//!   back,
//! * [`CloudServer`] — an event-driven TCP service: an acceptor deals
//!   connections round-robin to N epoll-backed **reactor shards** (see
//!   DESIGN.md §11), each owning a slab of nonblocking per-connection
//!   state machines that assemble length-prefixed frames incrementally;
//!   decoded requests run on a separate compute-worker pool and the
//!   encoded responses flow back to the owning shard through an eventfd
//!   wake pipe. Responses are encoded once into pooled buffers
//!   (zero-copy framing), and a request-keyed **plan cache** (identical
//!   trips are common: every EV entering the corridor in the same signal
//!   cycle with the same demand gets the same plan) stores the encoded
//!   frame too, so repeat trips skip both the solve *and* the encode.
//!   Concurrency scales with file descriptors, not threads; tune it with
//!   [`ServerConfig`],
//! * [`CloudClient`] — the in-vehicle side: connect, upload the trip,
//!   receive the profile.
//!
//! Beyond trip planning, the service forecasts traffic itself:
//! `REQ_PREDICT_BATCH`/`RESP_PREDICT_BATCH` frames carry a
//! [`PredictBatchRequest`] — lag windows for N intersections plus a
//! lookahead horizon count — answered from a shared cache of trained SAE
//! predictors (`velopt-traffic`), so one training serves every vehicle
//! asking about the same station.
//!
//! It also routes across whole road graphs: `REQ_ROUTE`/`RESP_ROUTE`
//! frames carry a [`RouteNetRequest`] — junctions, directed corridor
//! edges, and an `origin → dest` query — answered by the certified-A\*
//! router of `velopt-core::route` running on one shared process-wide
//! instance, so its edge-plan memo and `emin` lower-bound cache persist
//! across every query (fleet vehicles sharing corridor classes share
//! solved plans), with a byte-keyed `RESP_ROUTE` frame cache on top for
//! repeat queries.
//!
//! # Examples
//!
//! ```
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_cloud::{CloudClient, CloudServer, TripRequest};
//!
//! let server = CloudServer::spawn(2)?;
//! let mut client = CloudClient::connect(server.addr())?;
//! let profile = client.request(&TripRequest::us25_at(0.0))?;
//! assert_eq!(profile.window_violations, 0);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod client;
mod coalesce;
pub mod protocol;
mod reactor;
mod server;

pub use client::CloudClient;
pub use protocol::{
    CloudResponse, PredictBatchRequest, PredictBatchResponse, PredictQuery, RouteNetRequest,
    RouteNetResponse, TripRequest,
};
pub use server::{CloudServer, ServerConfig, ServerStats};
