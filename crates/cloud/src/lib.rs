//! The **vehicular cloud** optimization service.
//!
//! The paper's introduction frames deployment through the vehicular-cloud
//! computing model of \[6\], \[7\]: velocity-profile optimization is too heavy
//! for in-vehicle hardware, so *"each vehicle uploads its state (starting
//! time and route) to the cloud through wireless communication, and then
//! the cloud calculates the optimal velocity profile for the vehicle"*.
//! This crate implements that service:
//!
//! * [`protocol`] — a compact binary wire format (length-prefixed frames,
//!   explicit field encoding; no self-describing serialization on the wire)
//!   carrying the trip request — corridor geometry, departure time,
//!   per-light arrival rates, queue parameters — and the optimized profile
//!   back,
//! * [`CloudServer`] — a TCP service with a crossbeam worker pool: an
//!   acceptor thread queues connections, N workers run the DP, and a
//!   request-keyed **plan cache** (identical trips are common: every EV
//!   entering the corridor in the same signal cycle with the same demand
//!   gets the same plan) short-circuits repeated optimizations,
//! * [`CloudClient`] — the in-vehicle side: connect, upload the trip,
//!   receive the profile.
//!
//! Beyond trip planning, the service forecasts traffic itself:
//! `REQ_PREDICT_BATCH`/`RESP_PREDICT_BATCH` frames carry a
//! [`PredictBatchRequest`] — lag windows for N intersections plus a
//! lookahead horizon count — answered from a shared cache of trained SAE
//! predictors (`velopt-traffic`), so one training serves every vehicle
//! asking about the same station.
//!
//! # Examples
//!
//! ```
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_cloud::{CloudClient, CloudServer, TripRequest};
//!
//! let server = CloudServer::spawn(2)?;
//! let mut client = CloudClient::connect(server.addr())?;
//! let profile = client.request(&TripRequest::us25_at(0.0))?;
//! assert_eq!(profile.window_violations, 0);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod client;
pub mod protocol;
mod server;

pub use client::CloudClient;
pub use protocol::{
    CloudResponse, PredictBatchRequest, PredictBatchResponse, PredictQuery, TripRequest,
};
pub use server::{CloudServer, ServerStats};
