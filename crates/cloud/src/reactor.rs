//! The sharded nonblocking reactor behind [`CloudServer`](crate::CloudServer).
//!
//! Thread layout (see DESIGN.md §11):
//!
//! * **Acceptor** — one thread on a nonblocking listener behind its own
//!   tiny poller; admits connections round-robin across the shards (or
//!   refuses them with `RESP_ERROR` at the `max_connections` ceiling).
//! * **Shards** — N reactor threads. Each owns one epoll instance, an
//!   eventfd waker, and a slab of connection state machines. Readiness
//!   events drive incremental frame assembly; no shard thread ever blocks
//!   on a socket, so idle connections cost zero CPU.
//! * **Compute pool** — the existing crossbeam worker pool. Shards hand
//!   decoded frames over a channel; workers run the DP/SAE work, encode
//!   the response into a pooled buffer (or clone a cached frame), and
//!   queue it back to the owning shard via its inbox + waker.
//!
//! Per-connection ordering: a connection has **at most one frame in the
//! compute pool at a time**; later frames wait in its `pending` queue.
//! Responses therefore come back in request order without any sequencing
//! machinery, exactly like the old blocking loop — the reactor changes
//! *when* work runs, never *what* it computes.
//!
//! Backpressure: reads pause (the shard drops `EPOLLIN` interest) while a
//! connection's parsed-frame queue, raw read buffer, or outbound queue is
//! at its cap; writes happen under `EPOLLOUT` and unfinished frames stay
//! queued. A slab slot's generation counter stamps every dispatched job so
//! a response for a connection that died mid-solve is discarded instead of
//! being delivered to the slot's next tenant.

use crate::protocol::{decode_hello, encode_frame_into, tags};
use crate::server::ServerStats;
use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use polling::{Events, Interest, Poller, Waker};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Upper bound on a single frame, matching the blocking protocol readers.
const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;
/// Read syscall granularity.
const READ_CHUNK: usize = 16 * 1024;
/// Reads pause once this much unparsed inbound data is buffered.
const MAX_READ_BUF: usize = 256 * 1024;
/// Reads pause once this many parsed frames await the compute pool.
const MAX_PENDING_FRAMES: usize = 32;
/// Reads pause (and compute dispatch stops) once this many responses are
/// queued outbound — the bounded per-connection outbound queue.
const MAX_OUTBOX_FRAMES: usize = 64;
/// Epoll key reserved for the shard's waker eventfd.
const WAKER_KEY: u64 = u64::MAX;
/// Events drained per `epoll_wait` call.
const EVENTS_CAPACITY: usize = 256;

/// An encoded response frame ready for the wire (header + tag + payload).
pub(crate) enum FrameBuf {
    /// Encoded into a pooled buffer; returned to the pool once written.
    Pooled(BytesMut),
    /// A cached encoding served by reference (plan-cache hits) — cloning
    /// the `Bytes` is an `Arc` bump, not a copy.
    Shared(Bytes),
}

impl FrameBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            FrameBuf::Pooled(buf) => buf,
            FrameBuf::Shared(bytes) => bytes,
        }
    }
}

/// Per-shard pool of response buffers, provisioned eagerly at server start
/// so steady state serves from recycled buffers (`cloud.buf.reuse`);
/// allocations (`cloud.buf.alloc`) happen only when a burst outruns the
/// pool's capacity.
pub(crate) struct BufferPool {
    buffers: Mutex<Vec<BytesMut>>,
    capacity: usize,
    stats: Arc<ServerStats>,
}

impl BufferPool {
    pub(crate) fn new(capacity: usize, stats: Arc<ServerStats>) -> Self {
        // Startup provisioning is deliberately not counted as `buf.alloc`:
        // the counters describe the serving hot path, and a pool that pays
        // its allocations before the first connection keeps them there.
        let buffers = (0..capacity)
            .map(|_| BytesMut::with_capacity(4096))
            .collect();
        Self {
            buffers: Mutex::new(buffers),
            capacity,
            stats,
        }
    }

    /// An empty buffer, recycled when possible.
    pub(crate) fn acquire(&self) -> BytesMut {
        if let Some(mut buf) = self.buffers.lock().pop() {
            buf.clear();
            self.stats.record_buf_reuse();
            buf
        } else {
            self.stats.record_buf_alloc();
            BytesMut::with_capacity(4096)
        }
    }

    /// Returns a buffer to the pool (dropped if the pool is full).
    pub(crate) fn release(&self, buf: BytesMut) {
        let mut buffers = self.buffers.lock();
        if buffers.len() < self.capacity {
            buffers.push(buf);
        }
    }
}

/// A decoded request frame on its way to the compute pool.
pub(crate) struct Job {
    pub shard: usize,
    pub conn: usize,
    pub gen: u64,
    /// Tenant the connection declared via `REQ_HELLO` (0 until it does),
    /// so admission/fairness accounting survives the hop to the pool.
    pub tenant: u32,
    pub tag: u8,
    pub payload: Bytes,
}

/// Messages into a shard's inbox (paired with a waker wake).
pub(crate) enum ShardMsg {
    /// A freshly accepted connection to adopt.
    Accept(TcpStream),
    /// A computed response for slab slot `conn`, valid only if the slot's
    /// generation still matches `gen`.
    Response {
        conn: usize,
        gen: u64,
        frame: FrameBuf,
    },
}

/// The handle everyone else (acceptor, compute workers, shutdown) uses to
/// reach a shard: its inbox, its waker, and its buffer pool.
pub(crate) struct ShardHandle {
    pub tx: Sender<ShardMsg>,
    pub waker: Arc<Waker>,
    pub pool: Arc<BufferPool>,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Generation of the slab slot at admission; stamps dispatched jobs.
    gen: u64,
    /// Tenant declared via `REQ_HELLO`; 0 (the anonymous tenant) until
    /// then.
    tenant: u32,
    /// Raw inbound bytes not yet assembled into frames.
    read_buf: Vec<u8>,
    /// Parsed frames waiting for their turn in the compute pool.
    pending: VecDeque<(u8, Bytes)>,
    /// Encoded responses waiting for the socket, with a write offset for
    /// partially flushed frames.
    outbox: VecDeque<(FrameBuf, usize)>,
    /// Whether a frame of ours is currently in the compute pool.
    in_flight: bool,
    /// Peer sent EOF; we finish answering what is queued, then close.
    peer_closed: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

/// Slab of connections with generation-stamped slot reuse. Slot indices are
/// the epoll keys.
struct Slab {
    slots: Vec<(u64, Option<Conn>)>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, mut conn: Conn) -> usize {
        if let Some(idx) = self.free.pop() {
            conn.gen = self.slots[idx].0;
            self.slots[idx].1 = Some(conn);
            idx
        } else {
            conn.gen = 0;
            self.slots.push((0, Some(conn)));
            self.slots.len() - 1
        }
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slots.get_mut(idx).and_then(|slot| slot.1.as_mut())
    }

    /// Frees the slot and bumps its generation so late responses for the
    /// old tenant are recognizably stale.
    fn remove(&mut self, idx: usize) -> Option<Conn> {
        let slot = self.slots.get_mut(idx)?;
        let conn = slot.1.take()?;
        slot.0 += 1;
        self.free.push(idx);
        Some(conn)
    }

    fn live_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.1.is_some().then_some(i))
            .collect()
    }
}

/// Everything a shard thread owns.
pub(crate) struct Shard {
    pub id: usize,
    pub poller: Poller,
    pub waker: Arc<Waker>,
    pub inbox: Receiver<ShardMsg>,
    pub jobs: Sender<Job>,
    pub pool: Arc<BufferPool>,
    pub stats: Arc<ServerStats>,
    pub stop: Arc<AtomicBool>,
}

impl Shard {
    /// The shard thread body: wait → drain inbox → service readiness.
    pub(crate) fn run(self) {
        let mut slab = Slab::new();
        let mut events = Events::with_capacity(EVENTS_CAPACITY);
        loop {
            if self.poller.wait(&mut events, None).is_err() {
                // Only reachable on a broken poller (EINTR retries inside);
                // honor stop, otherwise nothing sensible remains to do.
                break;
            }
            let mut woken = false;
            for ev in events.iter() {
                if ev.key == WAKER_KEY {
                    woken = true;
                }
            }
            if woken {
                self.waker.drain();
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            self.drain_inbox(&mut slab);
            for ev in events.iter() {
                if ev.key == WAKER_KEY {
                    continue;
                }
                let idx = ev.key as usize;
                if ev.readable || ev.closed {
                    self.on_readable(&mut slab, idx);
                }
                if ev.writable {
                    self.on_writable(&mut slab, idx);
                }
            }
        }
        // Shutdown: release every live connection so active_connections
        // drains to zero and pooled buffers are accounted.
        for idx in slab.live_indices() {
            self.close(&mut slab, idx);
        }
    }

    fn drain_inbox(&self, slab: &mut Slab) {
        loop {
            match self.inbox.try_recv() {
                Ok(ShardMsg::Accept(stream)) => self.register(slab, stream),
                Ok(ShardMsg::Response { conn, gen, frame }) => {
                    self.on_response(slab, conn, gen, frame)
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
    }

    fn register(&self, slab: &mut Slab, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.stats.record_disconnect();
            return;
        }
        stream.set_nodelay(true).ok();
        let idx = slab.insert(Conn {
            stream,
            gen: 0, // overwritten by Slab::insert
            tenant: 0,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            outbox: VecDeque::new(),
            in_flight: false,
            peer_closed: false,
            interest: Interest::READ,
        });
        let conn = slab.get_mut(idx).expect("just inserted");
        let fd = conn.stream.as_raw_fd();
        if self.poller.add(fd, idx as u64, Interest::READ).is_err() {
            slab.remove(idx);
            self.stats.record_disconnect();
        }
    }

    fn on_readable(&self, slab: &mut Slab, idx: usize) {
        let Some(conn) = slab.get_mut(idx) else {
            return;
        };
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            if conn.read_buf.len() >= MAX_READ_BUF {
                break; // backpressure; level-triggered epoll re-reports
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slab, idx);
                    return;
                }
            }
        }
        if Self::parse_frames(conn, &self.stats).is_err() {
            // Protocol violation: the stream is beyond recovery.
            self.close(slab, idx);
            return;
        }
        self.process(slab, idx);
    }

    /// Assembles complete length-prefixed frames out of `read_buf`.
    fn parse_frames(conn: &mut Conn, stats: &ServerStats) -> Result<(), ()> {
        let mut off = 0usize;
        loop {
            let available = conn.read_buf.len() - off;
            if available < 4 {
                break;
            }
            let len = u32::from_be_bytes(
                conn.read_buf[off..off + 4]
                    .try_into()
                    .expect("4-byte slice"),
            ) as usize;
            if len == 0 || len > MAX_FRAME_LEN {
                return Err(());
            }
            if available < 4 + len {
                break;
            }
            let tag = conn.read_buf[off + 4];
            let payload = Bytes::from(conn.read_buf[off + 5..off + 4 + len].to_vec());
            stats.record_frame(tag);
            conn.pending.push_back((tag, payload));
            off += 4 + len;
        }
        if off > 0 {
            conn.read_buf.drain(..off);
        }
        Ok(())
    }

    fn on_writable(&self, slab: &mut Slab, idx: usize) {
        if slab.get_mut(idx).is_some() {
            self.process(slab, idx);
        }
    }

    fn on_response(&self, slab: &mut Slab, conn_idx: usize, gen: u64, frame: FrameBuf) {
        match slab.get_mut(conn_idx) {
            Some(conn) if conn.gen == gen => {
                conn.in_flight = false;
                conn.outbox.push_back((frame, 0));
                self.process(slab, conn_idx);
            }
            // The connection this response was computed for is gone;
            // recycle the buffer instead of delivering it to the slot's
            // next tenant.
            _ => {
                if let FrameBuf::Pooled(buf) = frame {
                    self.pool.release(buf);
                }
            }
        }
    }

    /// Answers a `REQ_HELLO` frame on the shard thread itself: records the
    /// tenant on the connection and queues the echo. Never touching the
    /// compute pool keeps strict FIFO with the planning frames around it.
    fn handle_hello(&self, conn: &mut Conn, payload: &Bytes) {
        let frame = match decode_hello(payload) {
            Ok(tenant) => {
                conn.tenant = tenant;
                let mut buf = self.pool.acquire();
                encode_frame_into(&mut buf, tags::RESP_HELLO, |b| b.put_u32(tenant));
                FrameBuf::Pooled(buf)
            }
            Err(e) => {
                self.stats.record_error_response();
                let mut buf = self.pool.acquire();
                encode_frame_into(&mut buf, tags::RESP_ERROR, |b| {
                    b.extend_from_slice(e.to_string().as_bytes())
                });
                FrameBuf::Pooled(buf)
            }
        };
        conn.outbox.push_back((frame, 0));
    }

    /// Dispatch the next pending frame (if allowed), flush the outbox, then
    /// reconcile interest — the single place connection state advances.
    fn process(&self, slab: &mut Slab, idx: usize) {
        // Dispatch at most one frame to the compute pool: per-connection
        // FIFO responses fall out of never having two in flight.
        let job = {
            let Some(conn) = slab.get_mut(idx) else {
                return;
            };
            // Session frames first: HELLOs at the queue head are answered
            // inline (they are cheap and must not occupy the connection's
            // single compute slot).
            while !conn.in_flight && conn.outbox.len() < MAX_OUTBOX_FRAMES {
                match conn.pending.front() {
                    Some((tags::REQ_HELLO, _)) => {
                        let (_, payload) = conn.pending.pop_front().expect("front exists");
                        self.handle_hello(conn, &payload);
                    }
                    _ => break,
                }
            }
            if !conn.in_flight && conn.outbox.len() < MAX_OUTBOX_FRAMES {
                conn.pending.pop_front().map(|(tag, payload)| {
                    conn.in_flight = true;
                    Job {
                        shard: self.id,
                        conn: idx,
                        gen: conn.gen,
                        tenant: conn.tenant,
                        tag,
                        payload,
                    }
                })
            } else {
                None
            }
        };
        if let Some(job) = job {
            if self.jobs.send(job).is_err() {
                // Compute pool is gone (shutdown); nothing more to serve.
                self.close(slab, idx);
                return;
            }
        }
        let conn = slab.get_mut(idx).expect("checked above");
        if Self::flush(conn, &self.pool).is_err() {
            self.close(slab, idx);
            return;
        }
        if conn.peer_closed && !conn.in_flight && conn.pending.is_empty() && conn.outbox.is_empty()
        {
            // Everything the peer asked for has been answered and written
            // (a trailing partial frame can never complete — drop it).
            self.close(slab, idx);
            return;
        }
        let paused = conn.read_buf.len() >= MAX_READ_BUF
            || conn.pending.len() >= MAX_PENDING_FRAMES
            || conn.outbox.len() >= MAX_OUTBOX_FRAMES;
        let want = Interest {
            readable: !conn.peer_closed && !paused,
            writable: !conn.outbox.is_empty(),
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, idx as u64, want).is_err() {
                self.close(slab, idx);
                return;
            }
            let conn = slab.get_mut(idx).expect("still live");
            conn.interest = want;
        }
    }

    /// Writes queued frames until the socket would block; partially written
    /// frames keep their offset.
    fn flush(conn: &mut Conn, pool: &BufferPool) -> Result<(), ()> {
        while let Some((frame, written)) = conn.outbox.front_mut() {
            let slice = frame.as_slice();
            while *written < slice.len() {
                match conn.stream.write(&slice[*written..]) {
                    Ok(0) => return Err(()),
                    Ok(n) => *written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Err(()),
                }
            }
            let (frame, _) = conn.outbox.pop_front().expect("front exists");
            if let FrameBuf::Pooled(buf) = frame {
                pool.release(buf);
            }
        }
        Ok(())
    }

    fn close(&self, slab: &mut Slab, idx: usize) {
        if let Some(conn) = slab.remove(idx) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            for (frame, _) in conn.outbox {
                if let FrameBuf::Pooled(buf) = frame {
                    self.pool.release(buf);
                }
            }
            self.stats.record_disconnect();
        }
    }
}

/// The acceptor thread body: poll the listener, admit round-robin, refuse
/// over-capacity connections with an error frame instead of wedging them.
pub(crate) struct Acceptor {
    pub listener: TcpListener,
    pub poller: Poller,
    pub waker: Arc<Waker>,
    pub shards: Arc<Vec<ShardHandle>>,
    pub stats: Arc<ServerStats>,
    pub stop: Arc<AtomicBool>,
    pub max_connections: usize,
}

impl Acceptor {
    pub(crate) fn run(self) {
        let mut next_shard = 0usize;
        let mut events = Events::with_capacity(16);
        loop {
            if self.poller.wait(&mut events, None).is_err() {
                break;
            }
            self.waker.drain();
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.stats.active_connections() >= self.max_connections as u64 {
                            self.stats.record_rejected();
                            Self::refuse(stream);
                            continue;
                        }
                        self.stats.record_admitted();
                        let shard = &self.shards[next_shard % self.shards.len()];
                        next_shard = next_shard.wrapping_add(1);
                        if shard.tx.send(ShardMsg::Accept(stream)).is_ok() {
                            let _ = shard.waker.wake();
                        } else {
                            self.stats.record_disconnect();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    // Transient per-connection failures (e.g. the peer reset
                    // before we accepted); try the next one.
                    Err(_) => continue,
                }
            }
        }
    }

    /// Tells an over-capacity client why it is being turned away. The
    /// stream is still blocking (nonblocking is set at shard registration)
    /// and the frame is tiny, so a plain write is fine here.
    fn refuse(mut stream: TcpStream) {
        let _ = crate::protocol::write_frame(
            &mut stream,
            crate::protocol::tags::RESP_ERROR,
            b"server at connection capacity",
        );
    }
}

/// Registers a shard's waker on its poller under the reserved key.
pub(crate) fn register_waker(poller: &Poller, waker: &Waker) -> std::io::Result<()> {
    poller.add(waker.as_raw_fd(), WAKER_KEY, Interest::READ)
}
