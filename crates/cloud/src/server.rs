//! The cloud service: sharded nonblocking reactor + compute pool + caches.
//!
//! I/O runs on N reactor shards (epoll, nonblocking sockets, per-connection
//! state machines — see [`crate::reactor`] and DESIGN.md §11); DP solves and
//! SAE predictions run on a separate compute worker pool. Concurrency
//! scales with file descriptors, not threads: thousands of idle connections
//! cost nothing, and `compute_workers` bounds CPU-bound work only.

use crate::protocol::{
    encode_frame_into, encode_profile, tags, BatchPlanRequest, BatchPlanResponse,
    PredictBatchRequest, PredictBatchResponse, RouteNetRequest, RouteNetResponse, TripRequest,
};
use crate::reactor::{Acceptor, BufferPool, FrameBuf, Job, Shard, ShardHandle, ShardMsg};
use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::{Mutex, RwLock};
use polling::{Poller, Waker};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use velopt_common::{Error, Result};
use velopt_core::batch::PlanRequest;
use velopt_core::dp::{DpConfig, DpOptimizer, SignalConstraint, StartState};
use velopt_core::route::{RouteConfig, RouteMetrics, RouteQuery, Router};
use velopt_core::windows::{green_only_constraints, queue_aware_constraints};
use velopt_ev_energy::{EnergyModel, RegenPolicy, VehicleParams};
use velopt_road::NodeId;
use velopt_traffic::nn::SgdConfig;
use velopt_traffic::{
    SaeConfig, SaePredictorConfig, VolumeGenerator, VolumePredictor, VolumeQuery,
};

/// Per-frame-type request counters: how the server's inbound traffic is
/// split across the protocol. Returned by [`ServerStats::frame_counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounts {
    /// `REQ_TRIP` frames received.
    pub trips: u64,
    /// `REQ_BATCH` frames received.
    pub batches: u64,
    /// `REQ_STATS` frames received.
    pub stats: u64,
    /// `REQ_TELEMETRY` frames received.
    pub telemetry: u64,
    /// `REQ_PREDICT_BATCH` frames received.
    pub predicts: u64,
    /// `REQ_ROUTE` frames received.
    pub routes: u64,
    /// `REQ_HELLO` frames received.
    pub hello: u64,
    /// Frames carrying an unknown tag.
    pub unknown: u64,
}

/// Serving counters, exposed over the wire via `REQ_STATS`.
#[derive(Debug, Default)]
pub struct ServerStats {
    served: AtomicU64,
    cache_hits: AtomicU64,
    batches: AtomicU64,
    solver_states_expanded: AtomicU64,
    solver_states_pruned: AtomicU64,
    solver_simd_rows: AtomicU64,
    solver_scalar_rows: AtomicU64,
    solver_repair_hits: AtomicU64,
    solver_repair_full_resolves: AtomicU64,
    connections: AtomicU64,
    rejected: AtomicU64,
    active: AtomicU64,
    frames_trip: AtomicU64,
    frames_stats: AtomicU64,
    frames_telemetry: AtomicU64,
    frames_hello: AtomicU64,
    frames_unknown: AtomicU64,
    error_responses: AtomicU64,
    predict_frames: AtomicU64,
    frames_route: AtomicU64,
    routes_served: AtomicU64,
    route_cache_hits: AtomicU64,
    route_states_settled: AtomicU64,
    route_edges_expanded: AtomicU64,
    route_edges_pruned: AtomicU64,
    route_oracle_calls: AtomicU64,
    route_plan_memo_hits: AtomicU64,
    route_lb_cache_hits: AtomicU64,
    route_lb_cache_misses: AtomicU64,
    predictor_cache_hits: AtomicU64,
    predictor_trainings: AtomicU64,
    predictions: AtomicU64,
    buf_reuse: AtomicU64,
    buf_alloc: AtomicU64,
    plan_encode_skipped: AtomicU64,
    coalesce_hits: AtomicU64,
    coalesce_flights: AtomicU64,
    batch_flushes: AtomicU64,
    /// Per-tenant `(served, rejected)` buckets, keyed by the tenant id the
    /// connection declared via `REQ_HELLO` (0 = anonymous). A plain mutex:
    /// touched once per coalesced response, never on the solver hot path.
    tenants: std::sync::Mutex<HashMap<u32, (u64, u64)>>,
}

impl ServerStats {
    /// Trips answered with a profile so far (batch members count
    /// individually).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// How many of those came straight from the plan cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Batch frames handled so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Connections accepted and admitted to a reactor shard so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Alias of [`Self::connections`] under the lifecycle-counter naming:
    /// accepted = admitted; see also [`Self::rejected`] and
    /// [`Self::active_connections`].
    pub fn accepted(&self) -> u64 {
        self.connections()
    }

    /// Connections refused at the `max_connections` ceiling (each received
    /// a `RESP_ERROR` frame instead of silently hanging).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Connections currently registered with a reactor shard.
    pub fn active_connections(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Error frames sent back so far (rejected trips, malformed batches,
    /// unknown tags). Capacity refusals count under [`Self::rejected`]
    /// instead.
    pub fn error_responses(&self) -> u64 {
        self.error_responses.load(Ordering::Relaxed)
    }

    /// The inbound request mix, split by frame type.
    pub fn frame_counts(&self) -> FrameCounts {
        FrameCounts {
            trips: self.frames_trip.load(Ordering::Relaxed),
            batches: self.batches(),
            stats: self.frames_stats.load(Ordering::Relaxed),
            telemetry: self.frames_telemetry.load(Ordering::Relaxed),
            predicts: self.predict_frames.load(Ordering::Relaxed),
            routes: self.frames_route.load(Ordering::Relaxed),
            hello: self.frames_hello.load(Ordering::Relaxed),
            unknown: self.frames_unknown.load(Ordering::Relaxed),
        }
    }

    /// Route queries answered with a plan so far.
    pub fn routes(&self) -> u64 {
        self.routes_served.load(Ordering::Relaxed)
    }

    /// How many of those came straight from the route-frame cache (no
    /// search, no encode — the cached `RESP_ROUTE` bytes are cloned).
    pub fn route_cache_hits(&self) -> u64 {
        self.route_cache_hits.load(Ordering::Relaxed)
    }

    /// Aggregated [`RouteMetrics`] counters over every fresh (non-cached)
    /// route search: settled states, expanded/pruned edges, oracle calls,
    /// and the plan-memo / lower-bound-cache hit counters. An operator
    /// watching `oracle_calls` against `edges_expanded` spots a pruning or
    /// memoization regression without attaching a profiler.
    pub fn route_search(&self) -> RouteMetrics {
        RouteMetrics {
            states_settled: self.route_states_settled.load(Ordering::Relaxed),
            edges_expanded: self.route_edges_expanded.load(Ordering::Relaxed),
            edges_pruned: self.route_edges_pruned.load(Ordering::Relaxed),
            oracle_calls: self.route_oracle_calls.load(Ordering::Relaxed),
            plan_memo_hits: self.route_plan_memo_hits.load(Ordering::Relaxed),
            lb_cache_hits: self.route_lb_cache_hits.load(Ordering::Relaxed),
            lb_cache_misses: self.route_lb_cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Folds one fresh route search's counters into the aggregate. The
    /// per-query `route.*` telemetry counters are published by the router
    /// itself; this keeps the `REQ_STATS`-style aggregate in lockstep.
    pub(crate) fn record_route(&self, metrics: &RouteMetrics) {
        self.route_states_settled
            .fetch_add(metrics.states_settled, Ordering::Relaxed);
        self.route_edges_expanded
            .fetch_add(metrics.edges_expanded, Ordering::Relaxed);
        self.route_edges_pruned
            .fetch_add(metrics.edges_pruned, Ordering::Relaxed);
        self.route_oracle_calls
            .fetch_add(metrics.oracle_calls, Ordering::Relaxed);
        self.route_plan_memo_hits
            .fetch_add(metrics.plan_memo_hits, Ordering::Relaxed);
        self.route_lb_cache_hits
            .fetch_add(metrics.lb_cache_hits, Ordering::Relaxed);
        self.route_lb_cache_misses
            .fetch_add(metrics.lb_cache_misses, Ordering::Relaxed);
    }

    /// Trips that piggybacked on an identical in-flight request in the
    /// coalescing window — each hit is a DP solve that never ran.
    pub fn coalesce_hits(&self) -> u64 {
        self.coalesce_hits.load(Ordering::Relaxed)
    }

    /// Distinct single-flight solves the coalescer dispatched (the
    /// denominator for the dedupe ratio: `hits / (hits + flights)`).
    pub fn coalesce_flights(&self) -> u64 {
        self.coalesce_flights.load(Ordering::Relaxed)
    }

    /// Coalescing windows flushed to the batch solver (by size or timeout).
    pub fn batch_flushes(&self) -> u64 {
        self.batch_flushes.load(Ordering::Relaxed)
    }

    /// Plans served to `tenant` through the coalescing path (cache hits
    /// and fan-outs both count; a tenant is whatever id the connection
    /// declared via `REQ_HELLO`, 0 = anonymous).
    pub fn tenant_served(&self, tenant: u32) -> u64 {
        self.tenants
            .lock()
            .expect("tenant stats lock")
            .get(&tenant)
            .map_or(0, |(served, _)| *served)
    }

    /// Requests refused to `tenant` at its admission ceiling
    /// (`tenant_max_inflight`).
    pub fn tenant_rejected(&self, tenant: u32) -> u64 {
        self.tenants
            .lock()
            .expect("tenant stats lock")
            .get(&tenant)
            .map_or(0, |(_, rejected)| *rejected)
    }

    /// Volume-forecast values served so far (`queries × horizons`, summed
    /// over every `REQ_PREDICT_BATCH`).
    pub fn predictions(&self) -> u64 {
        self.predictions.load(Ordering::Relaxed)
    }

    /// How the predictor cache behaved: `(cache hits, trainings)`. A
    /// training is one full SAE fit — the expensive path a warm cache
    /// avoids.
    pub fn predictor_cache(&self) -> (u64, u64) {
        (
            self.predictor_cache_hits.load(Ordering::Relaxed),
            self.predictor_trainings.load(Ordering::Relaxed),
        )
    }

    /// Response-buffer pool behavior: `(reuses, allocations)`. Steady state
    /// should be nearly all reuses; the allocation count is the pool's
    /// high-water mark plus burst overflow.
    pub fn buffer_pool(&self) -> (u64, u64) {
        (
            self.buf_reuse.load(Ordering::Relaxed),
            self.buf_alloc.load(Ordering::Relaxed),
        )
    }

    /// Plan responses served by cloning the cached frame encoding — repeat
    /// trips skip `encode_profile` entirely.
    pub fn plan_encode_skipped(&self) -> u64 {
        self.plan_encode_skipped.load(Ordering::Relaxed)
    }

    /// Counts one inbound frame by tag, mirrored into the telemetry
    /// registry's `cloud.req.*` counters.
    pub(crate) fn record_frame(&self, tag: u8) {
        match tag {
            tags::REQ_TRIP => {
                self.frames_trip.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.trip", 1);
            }
            tags::REQ_BATCH => {
                // `batches` itself is counted in `handle_batch` (which unit
                // tests also call directly, without a connection).
                telemetry::add("cloud.req.batch", 1);
            }
            tags::REQ_STATS => {
                self.frames_stats.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.stats", 1);
            }
            tags::REQ_TELEMETRY => {
                self.frames_telemetry.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.telemetry", 1);
            }
            tags::REQ_PREDICT_BATCH => {
                // `predict_frames` itself is counted in
                // `handle_predict_batch` (unit tests call it directly).
                telemetry::add("cloud.req.predict_batch", 1);
            }
            tags::REQ_ROUTE => {
                self.frames_route.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.route", 1);
            }
            tags::REQ_HELLO => {
                self.frames_hello.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.hello", 1);
            }
            _ => {
                self.frames_unknown.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.unknown", 1);
            }
        }
    }

    pub(crate) fn record_error_response(&self) {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.resp.error", 1);
    }

    /// One connection admitted past the capacity check.
    pub(crate) fn record_admitted(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.connections", 1);
    }

    /// One connection refused at the `max_connections` ceiling.
    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.rejected", 1);
    }

    /// One admitted connection left (closed, errored, or shed at
    /// shutdown).
    pub(crate) fn record_disconnect(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_buf_reuse(&self) {
        self.buf_reuse.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.buf.reuse", 1);
    }

    pub(crate) fn record_buf_alloc(&self) {
        self.buf_alloc.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.buf.alloc", 1);
    }

    /// Aggregated [`SolverMetrics`](velopt_core::metrics::SolverMetrics)
    /// counters over every fresh (non-cached) solve: `(states expanded,
    /// states pruned)`. An operator watching these spot a pruning
    /// regression without attaching a profiler.
    pub fn solver_states(&self) -> (u64, u64) {
        (
            self.solver_states_expanded.load(Ordering::Relaxed),
            self.solver_states_pruned.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn record_solve(&self, metrics: &velopt_core::metrics::SolverMetrics) {
        self.solver_states_expanded
            .fetch_add(metrics.states_expanded, Ordering::Relaxed);
        self.solver_states_pruned
            .fetch_add(metrics.states_pruned, Ordering::Relaxed);
        self.solver_simd_rows
            .fetch_add(metrics.simd_rows, Ordering::Relaxed);
        self.solver_scalar_rows
            .fetch_add(metrics.scalar_rows, Ordering::Relaxed);
        self.solver_repair_hits
            .fetch_add(metrics.repair_hits, Ordering::Relaxed);
        self.solver_repair_full_resolves
            .fetch_add(metrics.repair_full_resolves, Ordering::Relaxed);
    }

    /// Relax-kernel dispatch mix over every fresh solve: `(rows through
    /// the AVX2 microkernels, rows through the scalar kernel)`. An
    /// all-scalar split on AVX2 hardware means `VELOPT_DP_SIMD` (or
    /// `DpConfig::simd`) disabled vectorization on the serving path.
    pub fn dp_simd_rows(&self) -> (u64, u64) {
        (
            self.solver_simd_rows.load(Ordering::Relaxed),
            self.solver_scalar_rows.load(Ordering::Relaxed),
        )
    }

    /// Warm-start repair behavior over every fresh solve: `(window
    /// refreshes served by dirty-suffix repair, refreshes that fell back
    /// to a full retention re-solve)`. Stateless per-request serving
    /// reports zeros — repair only engages on arena-retained refreshes.
    pub fn dp_repair(&self) -> (u64, u64) {
        (
            self.solver_repair_hits.load(Ordering::Relaxed),
            self.solver_repair_full_resolves.load(Ordering::Relaxed),
        )
    }

    /// `n` more trips answered with a profile (coalescer fan-out path).
    pub(crate) fn record_served(&self, n: u64) {
        self.served.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` trips answered by cloning a cached frame (no solve, no encode).
    pub(crate) fn record_plan_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
        self.plan_encode_skipped.fetch_add(n, Ordering::Relaxed);
        telemetry::add("cloud.plan.encode_skipped", n);
    }

    /// One coalescing window flushed: `waiters` requests collapsed onto
    /// `groups` distinct keys, of which `flights` needed a fresh solve
    /// (the rest were answered by a late cache hit at flush time).
    pub(crate) fn record_coalesce_flush(&self, waiters: u64, groups: u64, flights: u64) {
        self.coalesce_hits
            .fetch_add(waiters - groups, Ordering::Relaxed);
        self.coalesce_flights.fetch_add(flights, Ordering::Relaxed);
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.coalesce.hits", waiters - groups);
        telemetry::add("cloud.coalesce.flights", flights);
        telemetry::add("cloud.batch.flushes", 1);
        telemetry::observe("cloud.batch.size", flights as f64);
    }

    /// One plan delivered to `tenant` through the coalescing path.
    pub(crate) fn record_tenant_served(&self, tenant: u32) {
        self.tenants
            .lock()
            .expect("tenant stats lock")
            .entry(tenant)
            .or_insert((0, 0))
            .0 += 1;
    }

    /// One request refused to `tenant` at its admission ceiling.
    pub(crate) fn record_tenant_rejected(&self, tenant: u32) {
        self.tenants
            .lock()
            .expect("tenant stats lock")
            .entry(tenant)
            .or_insert((0, 0))
            .1 += 1;
        telemetry::add("cloud.tenant.rejected", 1);
    }
}

/// A cached plan: the decoded profile (for batch responses and handler
/// callers) plus its complete `RESP_PROFILE` frame encoding — header, tag
/// and payload — so repeat hits are served by cloning the `Bytes` (an `Arc`
/// bump) instead of re-encoding the profile per request.
#[derive(Debug, Clone)]
pub(crate) struct CachedPlan {
    pub(crate) profile: velopt_core::dp::OptimizedProfile,
    pub(crate) frame: Bytes,
}

pub(crate) type PlanCache = RwLock<HashMap<Vec<u8>, CachedPlan>>;

/// The shared routing tier. One process-wide [`Router`] serves every
/// `REQ_ROUTE`: its edge-plan memo and certified lower-bound cache are
/// keyed on `(corridor signature, departure bin)`, so two fleet queries
/// that share a corridor class share its solved plans even across
/// different graphs. On top of that sits a byte-keyed frame cache
/// mirroring the trip [`PlanCache`]: a repeat query (identical request
/// bytes) is answered by cloning the cached `RESP_ROUTE` frame — no
/// search, no encode.
pub(crate) struct RouteService {
    /// The router, serialized behind a mutex: route searches share warm
    /// caches rather than racing cold ones, and the per-edge DP solves
    /// inside one search already fan out over the compute cores.
    router: Mutex<Router>,
    frames: RwLock<HashMap<Vec<u8>, Bytes>>,
}

impl RouteService {
    pub(crate) fn new() -> Result<Self> {
        Ok(Self {
            router: Mutex::new(Router::new(corridor_optimizer()?, RouteConfig::default())?),
            frames: RwLock::new(HashMap::new()),
        })
    }
}

/// Trained volume predictors keyed by `(station seed, train weeks, lags)`.
/// Training an SAE is orders of magnitude more expensive than querying it,
/// so every connection shares one cache of [`Arc`]ed predictors and the
/// batched inference path runs on a clone of the handle outside the lock.
type PredictorCache = RwLock<HashMap<(u64, u32, u32), Arc<VolumePredictor>>>;

/// Tuning knobs for [`CloudServer::spawn_with`]. `..Default::default()`
/// fills unspecified fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Threads running DP solves and SAE predictions (must be ≥ 1).
    pub compute_workers: usize,
    /// Reactor shards (epoll instances). `0` = auto: one per available
    /// core, capped at 4 — I/O shards saturate long before compute.
    pub shards: usize,
    /// Hard ceiling on concurrently admitted connections; connection
    /// number `max_connections + 1` receives a `RESP_ERROR` frame and is
    /// closed instead of hanging (must be ≥ 1).
    pub max_connections: usize,
    /// Response buffers each shard's pool retains for reuse.
    pub buffer_pool_capacity: usize,
    /// How long a `REQ_TRIP` may wait in the coalescing window for
    /// identical or near-simultaneous requests before the window is
    /// flushed to the batch solver. `Duration::ZERO` (the default)
    /// disables coalescing entirely: every trip dispatches as a single
    /// solve exactly as before.
    pub coalesce_window: std::time::Duration,
    /// Flush the coalescing window as soon as it holds this many waiting
    /// requests, without waiting out `coalesce_window` (must be ≥ 1 when
    /// coalescing is enabled).
    pub batch_max: usize,
    /// Per-tenant admission ceiling: at most this many of one tenant's
    /// requests may wait in the coalescing window at once; the next one
    /// is refused with `RESP_ERROR` so a greedy tenant cannot starve the
    /// others. `0` = unlimited. Tenants declare themselves via
    /// `REQ_HELLO`; connections that never do share tenant 0.
    pub tenant_max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            compute_workers: 4,
            shards: 0,
            max_connections: 1024,
            buffer_pool_capacity: 64,
            coalesce_window: std::time::Duration::ZERO,
            batch_max: 16,
            tenant_max_inflight: 0,
        }
    }
}

/// The vehicular-cloud optimization server.
///
/// See the crate-level example.
#[derive(Debug)]
pub struct CloudServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    accept_waker: Arc<Waker>,
    shard_wakers: Vec<Arc<Waker>>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    coalescer: Option<Arc<crate::coalesce::Coalescer>>,
    flusher: Option<JoinHandle<()>>,
}

impl CloudServer {
    /// Binds an ephemeral localhost port and spawns `workers` compute
    /// workers with default reactor settings — shorthand for
    /// [`Self::spawn_with`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for zero workers and [`Error::Io`]
    /// if the port cannot be bound.
    pub fn spawn(workers: usize) -> Result<Self> {
        Self::spawn_with(ServerConfig {
            compute_workers: workers,
            ..ServerConfig::default()
        })
    }

    /// Binds an ephemeral localhost port and spawns the full serving tier:
    /// acceptor, reactor shards, and compute workers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for zero compute workers or a zero
    /// connection ceiling, and [`Error::Io`] if the port or the epoll/
    /// eventfd plumbing cannot be set up.
    pub fn spawn_with(config: ServerConfig) -> Result<Self> {
        if config.compute_workers == 0 {
            return Err(Error::invalid_input("need at least one worker"));
        }
        if config.max_connections == 0 {
            return Err(Error::invalid_input("need max_connections >= 1"));
        }
        if config.coalesce_window > std::time::Duration::ZERO && config.batch_max == 0 {
            return Err(Error::invalid_input(
                "need batch_max >= 1 when coalescing is enabled",
            ));
        }
        let shard_count = if config.shards == 0 {
            velopt_common::par::effective_threads(0).clamp(1, 4)
        } else {
            config.shards
        };

        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let cache: Arc<PlanCache> = Arc::new(RwLock::new(HashMap::new()));
        let predictors: Arc<PredictorCache> = Arc::new(RwLock::new(HashMap::new()));
        let routes = Arc::new(RouteService::new()?);

        // Compute-pool channel: shards produce decoded frames, workers
        // consume them. Unbounded so a shard thread can never block on
        // dispatch (per-connection pending caps bound it to
        // connections × 1 in practice).
        let (jobs_tx, jobs_rx) = unbounded::<Job>();

        // Build every shard's plumbing first so any setup error surfaces
        // before a single thread is spawned.
        let mut shard_parts = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        let mut shard_wakers = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new()?);
            crate::reactor::register_waker(&poller, &waker)?;
            let pool = Arc::new(BufferPool::new(
                config.buffer_pool_capacity,
                Arc::clone(&stats),
            ));
            let (tx, rx) = unbounded::<ShardMsg>();
            handles.push(ShardHandle {
                tx,
                waker: Arc::clone(&waker),
                pool: Arc::clone(&pool),
            });
            shard_wakers.push(Arc::clone(&waker));
            shard_parts.push((poller, waker, rx, pool));
        }
        let handles = Arc::new(handles);

        // The coalescing layer sits between the workers and the DP solver:
        // workers enqueue `REQ_TRIP` jobs into its window instead of
        // solving them one at a time, and a dedicated flusher thread
        // handles timeout-triggered flushes (size-triggered flushes run
        // inline on the worker that filled the window).
        let coalescer = if config.coalesce_window > std::time::Duration::ZERO {
            Some(Arc::new(crate::coalesce::Coalescer::new(
                config.coalesce_window,
                config.batch_max,
                config.tenant_max_inflight,
                Arc::clone(&handles),
                Arc::clone(&stats),
                Arc::clone(&cache),
            )))
        } else {
            None
        };
        let flusher = coalescer.as_ref().map(|c| {
            let c = Arc::clone(c);
            std::thread::spawn(move || c.run_flusher())
        });

        let accept_poller = Poller::new()?;
        let accept_waker = Arc::new(Waker::new()?);
        crate::reactor::register_waker(&accept_poller, &accept_waker)?;
        accept_poller.add(listener.as_raw_fd_compat(), 0, polling::Interest::READ)?;

        let shard_threads: Vec<JoinHandle<()>> = shard_parts
            .into_iter()
            .enumerate()
            .map(|(id, (poller, waker, inbox, pool))| {
                let shard = Shard {
                    id,
                    poller,
                    waker,
                    inbox,
                    jobs: jobs_tx.clone(),
                    pool,
                    stats: Arc::clone(&stats),
                    stop: Arc::clone(&stop),
                };
                std::thread::spawn(move || shard.run())
            })
            .collect();
        // Shards hold the only job senders now; once they exit, workers
        // drain the queue and see disconnect.
        drop(jobs_tx);

        let worker_threads: Vec<JoinHandle<()>> = (0..config.compute_workers)
            .map(|_| {
                let jobs = jobs_rx.clone();
                let handles = Arc::clone(&handles);
                let stats = Arc::clone(&stats);
                let cache = Arc::clone(&cache);
                let predictors = Arc::clone(&predictors);
                let routes = Arc::clone(&routes);
                let coalescer = coalescer.clone();
                std::thread::spawn(move || {
                    run_worker(
                        jobs,
                        &handles,
                        &stats,
                        &cache,
                        &predictors,
                        &routes,
                        coalescer,
                    )
                })
            })
            .collect();

        let acceptor = Acceptor {
            listener,
            poller: accept_poller,
            waker: Arc::clone(&accept_waker),
            shards: handles,
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
            max_connections: config.max_connections,
        };
        let acceptor = std::thread::spawn(move || acceptor.run());

        Ok(Self {
            addr,
            stats,
            stop,
            accept_waker,
            shard_wakers,
            acceptor: Some(acceptor),
            shards: shard_threads,
            workers: worker_threads,
            coalescer,
            flusher,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, sheds connections, and joins every thread.
    /// Idempotent: dropping the server after (or instead of) calling this
    /// performs the same orderly teardown exactly once.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// The single teardown path, shared by [`Self::shutdown`] and `Drop`.
    /// Wakes every reactor thread through its eventfd (no TCP self-connect
    /// involved) and joins; a second call finds the handles already taken
    /// and does nothing.
    fn shutdown_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already torn down
        }
        let _ = self.accept_waker.wake();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for waker in &self.shard_wakers {
            let _ = waker.wake();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
        // Shard exits dropped the last job senders; workers drain what is
        // queued and see the disconnect.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers are gone, so nothing can enqueue into the coalescing
        // window anymore; stop the flusher last. Still-parked waiters
        // belong to connections the shards already shed.
        if let Some(c) = self.coalescer.take() {
            c.stop();
        }
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        // Safe to block: every thread is parked on epoll/eventfd or the
        // jobs channel and wakes immediately; there is no lingering
        // self-connect and no double teardown after `shutdown()`.
        self.shutdown_impl();
    }
}

// `TcpListener::as_raw_fd` lives in a platform-specific trait; this tiny
// shim keeps the single call site readable.
trait AsRawFdCompat {
    fn as_raw_fd_compat(&self) -> std::os::fd::RawFd;
}

impl AsRawFdCompat for TcpListener {
    fn as_raw_fd_compat(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        self.as_raw_fd()
    }
}

/// Compute-worker body: take a decoded frame, produce its encoded response
/// frame, hand it back to the owning shard.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    jobs: Receiver<Job>,
    shards: &[ShardHandle],
    stats: &ServerStats,
    cache: &PlanCache,
    predictors: &PredictorCache,
    routes: &RouteService,
    coalescer: Option<Arc<crate::coalesce::Coalescer>>,
) {
    while let Ok(job) = jobs.recv() {
        if job.tag == tags::REQ_TRIP {
            // With coalescing enabled, trips route through the window:
            // the coalescer answers cache hits immediately and fans a
            // single batch solve out to every waiter otherwise.
            if let Some(c) = &coalescer {
                c.submit(job);
                continue;
            }
        }
        let shard = &shards[job.shard];
        let request_span = telemetry::span("cloud.request_seconds");
        let frame = respond(
            job.tag,
            job.payload,
            stats,
            cache,
            predictors,
            routes,
            &shard.pool,
        );
        drop(request_span);
        let delivered = shard
            .tx
            .send(ShardMsg::Response {
                conn: job.conn,
                gen: job.gen,
                frame,
            })
            .is_ok();
        if delivered {
            let _ = shard.waker.wake();
        }
        // If the shard is gone (shutdown), the response is dropped with it.
    }
}

/// Builds the complete response frame for one request frame. Every path
/// returns wire-ready bytes — header, tag, payload — bit-identical to what
/// the old blocking server produced with `write_frame`.
fn respond(
    tag: u8,
    mut payload: Bytes,
    stats: &ServerStats,
    cache: &PlanCache,
    predictors: &PredictorCache,
    routes: &RouteService,
    pool: &BufferPool,
) -> FrameBuf {
    match tag {
        tags::REQ_TRIP => {
            let key = payload.to_vec();
            match handle_trip(&mut payload, &key, stats, cache) {
                Ok(plan) => FrameBuf::Shared(plan.frame),
                Err(e) => error_frame(stats, pool, &e.to_string()),
            }
        }
        tags::REQ_ROUTE => {
            let key = payload.to_vec();
            match handle_route(&mut payload, &key, stats, routes) {
                Ok(frame) => FrameBuf::Shared(frame),
                Err(e) => error_frame(stats, pool, &e.to_string()),
            }
        }
        tags::REQ_BATCH => match handle_batch(&mut payload, stats, cache) {
            Ok(response) => {
                let mut buf = pool.acquire();
                let encode_span = telemetry::span("cloud.encode_seconds");
                encode_frame_into(&mut buf, tags::RESP_BATCH, |b| response.encode_into(b));
                drop(encode_span);
                FrameBuf::Pooled(buf)
            }
            Err(e) => error_frame(stats, pool, &e.to_string()),
        },
        tags::REQ_PREDICT_BATCH => match handle_predict_batch(&mut payload, stats, predictors) {
            Ok(response) => {
                let mut buf = pool.acquire();
                let encode_span = telemetry::span("cloud.encode_seconds");
                encode_frame_into(&mut buf, tags::RESP_PREDICT_BATCH, |b| {
                    response.encode_into(b)
                });
                drop(encode_span);
                FrameBuf::Pooled(buf)
            }
            Err(e) => error_frame(stats, pool, &e.to_string()),
        },
        tags::REQ_STATS => {
            let mut buf = pool.acquire();
            encode_frame_into(&mut buf, tags::RESP_STATS, |b| {
                b.put_u64(stats.served());
                b.put_u64(stats.cache_hits());
            });
            FrameBuf::Pooled(buf)
        }
        tags::REQ_TELEMETRY => {
            let mut buf = pool.acquire();
            encode_frame_into(&mut buf, tags::RESP_TELEMETRY, |b| {
                b.extend_from_slice(telemetry::snapshot_json().as_bytes())
            });
            FrameBuf::Pooled(buf)
        }
        other => error_frame(stats, pool, &format!("unknown request tag {other}")),
    }
}

pub(crate) fn error_frame(stats: &ServerStats, pool: &BufferPool, message: &str) -> FrameBuf {
    stats.record_error_response();
    let mut buf = pool.acquire();
    encode_frame_into(&mut buf, tags::RESP_ERROR, |b| {
        b.extend_from_slice(message.as_bytes())
    });
    FrameBuf::Pooled(buf)
}

/// The optimizer every connection plans with: the same physically-grounded
/// model the local pipeline uses.
pub(crate) fn corridor_optimizer() -> Result<DpOptimizer> {
    let energy = EnergyModel::with_regen(
        VehicleParams::spark_ev(),
        RegenPolicy::Limited {
            efficiency: 0.6,
            cutoff: velopt_common::units::MetersPerSecond::new(1.5),
        },
    );
    DpOptimizer::new(energy, DpConfig::default())
}

/// Validates a trip and builds its per-signal arrival windows.
pub(crate) fn trip_constraints(
    trip: &TripRequest,
    config: &DpConfig,
) -> Result<Vec<SignalConstraint>> {
    trip.validated()?;
    if trip.queue_aware {
        queue_aware_constraints(&trip.road, &trip.rates, trip.queue, config.horizon)
    } else {
        Ok(green_only_constraints(&trip.road, config.horizon))
    }
}

/// Encodes a profile's complete `RESP_PROFILE` frame once, for the cache.
pub(crate) fn plan_frame(profile: &velopt_core::dp::OptimizedProfile) -> Bytes {
    let encode_span = telemetry::span("cloud.encode_seconds");
    let mut buf = BytesMut::new();
    encode_frame_into(&mut buf, tags::RESP_PROFILE, |b| encode_profile(profile, b));
    drop(encode_span);
    buf.freeze()
}

fn handle_trip(
    payload: &mut Bytes,
    key: &[u8],
    stats: &ServerStats,
    cache: &PlanCache,
) -> Result<CachedPlan> {
    if let Some(hit) = cache.read().get(key) {
        stats.served.fetch_add(1, Ordering::Relaxed);
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        stats.plan_encode_skipped.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.plan.encode_skipped", 1);
        return Ok(hit.clone());
    }
    let decode_span = telemetry::span("cloud.decode_seconds");
    let request = TripRequest::decode(payload)?;
    drop(decode_span);
    let optimizer = corridor_optimizer()?;
    let constraints = trip_constraints(&request, optimizer.config())?;
    let plan_span = telemetry::span("cloud.plan_seconds");
    let profile = optimizer.optimize_from(
        &request.road,
        &constraints,
        StartState {
            time: request.departure,
            ..StartState::default()
        },
    )?;
    drop(plan_span);
    stats.record_solve(&profile.metrics);
    let plan = CachedPlan {
        frame: plan_frame(&profile),
        profile,
    };
    cache.write().insert(key.to_vec(), plan.clone());
    stats.served.fetch_add(1, Ordering::Relaxed);
    Ok(plan)
}

/// Answers one `REQ_ROUTE`. Repeat queries (byte-identical requests) are
/// served by cloning the cached `RESP_ROUTE` frame; fresh queries rebuild
/// the graph, run the A* search on the shared router — whose edge-plan
/// memo and lower-bound cache persist across every query the server has
/// seen — and join the frame cache on the way out.
fn handle_route(
    payload: &mut Bytes,
    key: &[u8],
    stats: &ServerStats,
    routes: &RouteService,
) -> Result<Bytes> {
    if let Some(hit) = routes.frames.read().get(key) {
        stats.routes_served.fetch_add(1, Ordering::Relaxed);
        stats.route_cache_hits.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.route.cache_hits", 1);
        return Ok(hit.clone());
    }
    let decode_span = telemetry::span("cloud.decode_seconds");
    let request = RouteNetRequest::decode(payload)?;
    drop(decode_span);
    let graph = request.to_graph()?;
    let query = RouteQuery {
        origin: NodeId(request.origin),
        dest: NodeId(request.dest),
        depart: request.depart,
    };
    let plan_span = telemetry::span("cloud.route_seconds");
    let plan = routes.router.lock().plan(&graph, query)?;
    drop(plan_span);
    stats.record_route(&plan.metrics);
    let response = RouteNetResponse::from_plan(&plan);
    let encode_span = telemetry::span("cloud.encode_seconds");
    let mut buf = BytesMut::new();
    encode_frame_into(&mut buf, tags::RESP_ROUTE, |b| response.encode_into(b));
    drop(encode_span);
    let frame = buf.freeze();
    routes.frames.write().insert(key.to_vec(), frame.clone());
    stats.routes_served.fetch_add(1, Ordering::Relaxed);
    Ok(frame)
}

/// Plans a whole batch in one go: cached trips are answered immediately,
/// the misses fan out over the cores via
/// [`DpOptimizer::optimize_batch`], and per-trip failures come back as
/// error entries in request order (they never sink the batch).
fn handle_batch(
    payload: &mut Bytes,
    stats: &ServerStats,
    cache: &PlanCache,
) -> Result<BatchPlanResponse> {
    let decode_span = telemetry::span("cloud.decode_seconds");
    let batch = BatchPlanRequest::decode(payload)?;
    drop(decode_span);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    let n = batch.trips.len();
    let mut results: Vec<Option<std::result::Result<velopt_core::dp::OptimizedProfile, String>>> =
        (0..n).map(|_| None).collect();

    // Cache pass first — a batch member's key is its canonical encoding,
    // the same bytes a single `REQ_TRIP` for that trip would carry.
    let keys: Vec<Vec<u8>> = batch.trips.iter().map(|t| t.encode().to_vec()).collect();
    {
        let cache = cache.read();
        for (i, key) in keys.iter().enumerate() {
            if let Some(hit) = cache.get(key) {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                results[i] = Some(Ok(hit.profile.clone()));
            }
        }
    }

    // Validate the misses and build their arrival windows; invalid trips
    // become error entries right here.
    let optimizer = corridor_optimizer()?;
    let mut prepared: Vec<(usize, Vec<SignalConstraint>)> = Vec::new();
    for (i, trip) in batch.trips.iter().enumerate() {
        if results[i].is_some() {
            continue;
        }
        match trip_constraints(trip, optimizer.config()) {
            Ok(constraints) => prepared.push((i, constraints)),
            Err(e) => results[i] = Some(Err(e.to_string())),
        }
    }

    let requests: Vec<PlanRequest<'_>> = prepared
        .iter()
        .map(|(i, constraints)| PlanRequest {
            road: &batch.trips[*i].road,
            signals: constraints,
            start: StartState {
                time: batch.trips[*i].departure,
                ..StartState::default()
            },
        })
        .collect();
    let plan_span = telemetry::span("cloud.plan_seconds");
    let planned_batch = optimizer.optimize_batch(&requests);
    drop(plan_span);
    for ((i, _), planned) in prepared.iter().zip(planned_batch) {
        match planned {
            Ok(profile) => {
                stats.record_solve(&profile.metrics);
                // Fresh batch members join the plan cache with their frame
                // encoding, so a later single REQ_TRIP for the same trip is
                // a zero-encode hit.
                cache.write().insert(
                    keys[*i].clone(),
                    CachedPlan {
                        frame: plan_frame(&profile),
                        profile: profile.clone(),
                    },
                );
                results[*i] = Some(Ok(profile));
            }
            Err(e) => results[*i] = Some(Err(e.to_string())),
        }
    }
    stats.served.fetch_add(n as u64, Ordering::Relaxed);
    Ok(BatchPlanResponse {
        results: results
            .into_iter()
            .map(|r| r.expect("every batch member answered"))
            .collect(),
    })
}

/// The SAE recipe the service trains cache misses with: mini-batch SGD on
/// the gemm kernels, sized for serving latency rather than paper-figure
/// fidelity (the full recipe lives in `SaePredictorConfig::default`).
fn service_predictor_config(lags: usize) -> SaePredictorConfig {
    let sgd = |epochs| SgdConfig {
        epochs,
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size: 16,
        threads: 1,
    };
    SaePredictorConfig {
        lags,
        sae: SaeConfig {
            hidden_layers: vec![16, 8],
            pretrain: sgd(6),
            finetune: sgd(40),
            ..SaeConfig::default()
        },
    }
}

/// Answers a volume-forecast batch from the shared predictor cache,
/// training (and caching) a predictor on the first request for a given
/// `(station seed, train weeks, lags)`. Inference runs outside the cache
/// lock on a cloned [`Arc`], so a slow training never blocks forecasts
/// against already-warm predictors.
fn handle_predict_batch(
    payload: &mut Bytes,
    stats: &ServerStats,
    predictors: &PredictorCache,
) -> Result<PredictBatchResponse> {
    let decode_span = telemetry::span("cloud.decode_seconds");
    let request = PredictBatchRequest::decode(payload)?;
    drop(decode_span);
    stats.predict_frames.fetch_add(1, Ordering::Relaxed);
    request.validated()?;
    if request.queries.is_empty() {
        return Ok(PredictBatchResponse::default());
    }
    let lags = request.queries[0].history.len() as u32;
    let key = (request.station_seed, request.train_weeks, lags);
    // Look up and drop the read guard before the (possibly training) miss
    // path: an `if let` on the guard itself would hold it across the
    // `write()` below and self-deadlock.
    let cached = predictors.read().get(&key).map(Arc::clone);
    let predictor = if let Some(hit) = cached {
        stats.predictor_cache_hits.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.predictor.cache_hits", 1);
        hit
    } else {
        let train_span = telemetry::span("cloud.predictor_train_seconds");
        let feed = VolumeGenerator::us25_station(request.station_seed)
            .generate_weeks(request.train_weeks as usize)?;
        let trained = Arc::new(VolumePredictor::train(
            &feed,
            &service_predictor_config(lags as usize),
        )?);
        drop(train_span);
        stats.predictor_trainings.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.predictor.trainings", 1);
        // A concurrent training of the same key may have won the race;
        // keep whichever landed first so repeat queries stay consistent.
        Arc::clone(
            predictors
                .write()
                .entry(key)
                .or_insert_with(|| Arc::clone(&trained)),
        )
    };
    let queries: Vec<VolumeQuery> = request
        .queries
        .iter()
        .map(|q| VolumeQuery {
            history: q.history.clone(),
            hour_index: q.hour_index as usize,
        })
        .collect();
    let predict_span = telemetry::span("cloud.predict_seconds");
    let rows = predictor.predict_batch(&queries, request.horizons as usize)?;
    drop(predict_span);
    let volumes: Vec<Vec<f64>> = rows
        .into_iter()
        .map(|row| row.into_iter().map(|v| v.value()).collect())
        .collect();
    let served = (volumes.len() * request.horizons as usize) as u64;
    stats.predictions.fetch_add(served, Ordering::Relaxed);
    telemetry::add("cloud.predictions", served);
    Ok(PredictBatchResponse { volumes })
}

// Integration-style tests live with the client (`client.rs`) and in
// `tests/` so they exercise the full wire path; protocol unit tests live in
// `protocol.rs`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_rejected() {
        assert!(CloudServer::spawn(0).is_err());
        assert!(CloudServer::spawn_with(ServerConfig {
            compute_workers: 0,
            ..ServerConfig::default()
        })
        .is_err());
        assert!(CloudServer::spawn_with(ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        })
        .is_err());
    }

    #[test]
    fn stats_start_at_zero() {
        let server = CloudServer::spawn(1).unwrap();
        assert_eq!(server.stats().served(), 0);
        assert_eq!(server.stats().cache_hits(), 0);
        assert_eq!(server.stats().accepted(), 0);
        assert_eq!(server.stats().rejected(), 0);
        assert_eq!(server.stats().active_connections(), 0);
        assert_eq!(server.stats().plan_encode_skipped(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_then_drop_is_idempotent() {
        let server = CloudServer::spawn(1).unwrap();
        server.shutdown(); // consumes; Drop runs right after and must no-op
        let server = CloudServer::spawn(1).unwrap();
        drop(server); // never explicitly shut down; Drop joins cleanly
    }

    #[test]
    fn trip_handler_caches_by_request_bytes() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());
        let req = TripRequest::us25_at(0.0);
        let encoded = req.encode();
        let key = encoded.to_vec();

        let mut payload = encoded.clone();
        let first = handle_trip(&mut payload, &key, &stats, &cache).unwrap();
        assert_eq!(stats.served(), 1);
        assert_eq!(stats.cache_hits(), 0);
        assert_eq!(stats.plan_encode_skipped(), 0);

        let mut payload = encoded.clone();
        let second = handle_trip(&mut payload, &key, &stats, &cache).unwrap();
        assert_eq!(stats.served(), 2);
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(stats.plan_encode_skipped(), 1);
        assert_eq!(first.profile, second.profile);
        // The hit serves the exact cached frame bytes (no re-encode).
        assert_eq!(first.frame, second.frame);
        // Only the fresh solve contributed solver counters.
        let (expanded, _) = stats.solver_states();
        assert_eq!(expanded, first.profile.metrics.states_expanded);
    }

    #[test]
    fn cached_frame_is_the_wire_encoding() {
        // The cached frame must be byte-identical to what `write_frame`
        // would produce for the same profile — that is the zero-copy hit
        // path's correctness condition.
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());
        let encoded = TripRequest::us25_at(0.0).encode();
        let plan = handle_trip(&mut encoded.clone(), &encoded.to_vec(), &stats, &cache).unwrap();
        let mut payload = BytesMut::new();
        encode_profile(&plan.profile, &mut payload);
        let mut expected = Vec::new();
        crate::protocol::write_frame(&mut expected, tags::RESP_PROFILE, &payload).unwrap();
        assert_eq!(&plan.frame[..], &expected[..]);
    }

    #[test]
    fn batch_handler_mixes_cache_fresh_and_errors() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());

        // Prime the cache with the t=0 trip through the single-trip path.
        let seed = TripRequest::us25_at(0.0);
        let encoded = seed.encode();
        let cached_plan =
            handle_trip(&mut encoded.clone(), &encoded.to_vec(), &stats, &cache).unwrap();

        let mut invalid = TripRequest::us25_at(30.0);
        invalid.rates.pop(); // arity mismatch
        let batch = BatchPlanRequest {
            trips: vec![
                TripRequest::us25_at(0.0),
                invalid,
                TripRequest::us25_at(60.0),
            ],
        };
        let mut payload = batch.encode();
        let response = handle_batch(&mut payload, &stats, &cache).unwrap();
        assert_eq!(response.results.len(), 3);
        // Member 0 came from the cache (same plan, one more hit).
        assert_eq!(response.results[0].as_ref().unwrap(), &cached_plan.profile);
        assert_eq!(stats.cache_hits(), 1);
        // Member 1 failed alone.
        assert!(response.results[1].as_ref().unwrap_err().contains("rates"));
        // Member 2 was solved fresh and is now cached with its frame.
        assert!(response.results[2].is_ok());
        assert_eq!(stats.served(), 1 + 3);
        assert_eq!(stats.batches(), 1);
        let key = TripRequest::us25_at(60.0).encode().to_vec();
        let entry = cache.read().get(&key).cloned().unwrap();
        assert_eq!(&entry.profile, response.results[2].as_ref().unwrap());
        assert!(!entry.frame.is_empty());
    }

    #[test]
    fn predict_handler_trains_once_then_hits_the_cache() {
        use crate::protocol::PredictQuery;
        let stats = ServerStats::default();
        let predictors: PredictorCache = RwLock::new(HashMap::new());
        let feed = VolumeGenerator::us25_station(11).generate_weeks(2).unwrap();
        let lags = 12;
        let request = PredictBatchRequest {
            station_seed: 11,
            train_weeks: 2,
            horizons: 3,
            queries: vec![
                PredictQuery {
                    history: feed.samples()[..lags].to_vec(),
                    hour_index: lags as u64,
                },
                PredictQuery {
                    history: feed.samples()[feed.len() - lags..].to_vec(),
                    hour_index: feed.len() as u64,
                },
            ],
        };
        let mut payload = request.encode();
        let first = handle_predict_batch(&mut payload, &stats, &predictors).unwrap();
        assert_eq!(first.volumes.len(), 2);
        assert!(first
            .volumes
            .iter()
            .all(|row| row.len() == 3 && row.iter().all(|v| v.is_finite() && *v >= 0.0)));
        assert_eq!(stats.predictor_cache(), (0, 1));
        assert_eq!(stats.predictions(), 6);

        let mut payload = request.encode();
        let second = handle_predict_batch(&mut payload, &stats, &predictors).unwrap();
        assert_eq!(second, first, "a cached predictor answers identically");
        assert_eq!(stats.predictor_cache(), (1, 1));
        assert_eq!(stats.predictions(), 12);
        assert_eq!(stats.frame_counts().predicts, 2);
    }

    #[test]
    fn predict_handler_rejects_invalid_requests() {
        use crate::protocol::PredictQuery;
        let stats = ServerStats::default();
        let predictors: PredictorCache = RwLock::new(HashMap::new());
        let request = PredictBatchRequest {
            station_seed: 1,
            train_weeks: 0, // degenerate training window
            horizons: 2,
            queries: vec![PredictQuery {
                history: vec![10.0; 12],
                hour_index: 0,
            }],
        };
        let mut payload = request.encode();
        assert!(handle_predict_batch(&mut payload, &stats, &predictors).is_err());
        assert!(predictors.read().is_empty(), "nothing trained or cached");
    }

    #[test]
    fn batch_equals_sequential_trip_requests() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());
        let trips = vec![TripRequest::us25_at(0.0), TripRequest::us25_at(45.0)];

        let singles: Vec<_> = trips
            .iter()
            .map(|t| {
                let fresh_cache: PlanCache = RwLock::new(HashMap::new());
                let encoded = t.encode();
                handle_trip(
                    &mut encoded.clone(),
                    &encoded.to_vec(),
                    &stats,
                    &fresh_cache,
                )
                .unwrap()
            })
            .collect();

        let batch = BatchPlanRequest { trips };
        let mut payload = batch.encode();
        let response = handle_batch(&mut payload, &stats, &cache).unwrap();
        for (single, batched) in singles.iter().zip(&response.results) {
            assert_eq!(batched.as_ref().unwrap(), &single.profile);
        }
    }

    /// A 3-junction diamond whose corridors come from a small class pool,
    /// so distinct edges share plans through the router's memo.
    fn demo_route_graph(extra_nodes: usize) -> velopt_road::RoadGraph {
        use velopt_road::CorridorTemplate;
        let template = CorridorTemplate {
            length: (200.0, 400.0),
            lights: (0, 1),
            phase: (15.0, 25.0),
            stop_sign_probability: 0.3,
            max_grade_percent: 0.0,
            limits_kmh: (30.0, 50.0),
        };
        let mut graph = velopt_road::RoadGraph::new(3 + extra_nodes).unwrap();
        graph
            .add_edge(NodeId(0), NodeId(1), template.generate(1).unwrap())
            .unwrap();
        graph
            .add_edge(NodeId(1), NodeId(2), template.generate(2).unwrap())
            .unwrap();
        graph
            .add_edge(NodeId(0), NodeId(2), template.generate(3).unwrap())
            .unwrap();
        graph
    }

    #[test]
    fn route_handler_caches_by_request_bytes() {
        use velopt_common::units::Seconds;
        let stats = ServerStats::default();
        let routes = RouteService::new().unwrap();
        let request = RouteNetRequest::from_graph(
            &demo_route_graph(0),
            NodeId(0),
            NodeId(2),
            Seconds::new(10.0),
        );
        let encoded = request.encode();
        let key = encoded.to_vec();

        let first = handle_route(&mut encoded.clone(), &key, &stats, &routes).unwrap();
        assert_eq!(stats.routes(), 1);
        assert_eq!(stats.route_cache_hits(), 0);
        let fresh = stats.route_search();
        assert!(fresh.oracle_calls > 0);
        assert!(fresh.states_settled > 0);

        // The frame is the wire encoding: header, RESP_ROUTE tag, payload.
        assert_eq!(first[4], tags::RESP_ROUTE);
        let mut payload = Bytes::copy_from_slice(&first[5..]);
        let response = RouteNetResponse::decode(&mut payload).unwrap();
        assert!(!response.edges.is_empty());
        assert_eq!(response.depart, Seconds::new(10.0));
        assert!(response.arrival > response.depart);
        assert!(response
            .times
            .windows(2)
            .all(|w| w[1].value() >= w[0].value()));

        // The repeat query clones the cached frame: no search ran.
        let second = handle_route(&mut encoded.clone(), &key, &stats, &routes).unwrap();
        assert_eq!(first, second);
        assert_eq!(stats.routes(), 2);
        assert_eq!(stats.route_cache_hits(), 1);
        assert_eq!(stats.route_search(), fresh);
    }

    #[test]
    fn shared_router_memoizes_edge_plans_across_requests() {
        use velopt_common::units::Seconds;
        let stats = ServerStats::default();
        let routes = RouteService::new().unwrap();
        let depart = Seconds::new(10.0);
        let warm = RouteNetRequest::from_graph(&demo_route_graph(0), NodeId(0), NodeId(2), depart);
        let encoded = warm.encode();
        handle_route(&mut encoded.clone(), &encoded.to_vec(), &stats, &routes).unwrap();
        let after_warm = stats.route_search();
        assert!(after_warm.oracle_calls > 0);

        // Same corridors, same query, but one extra (isolated) junction:
        // byte-different request, so the frame cache misses and the search
        // re-runs — yet every edge plan comes from the shared memo, so not
        // a single new oracle call is spent.
        let padded =
            RouteNetRequest::from_graph(&demo_route_graph(1), NodeId(0), NodeId(2), depart);
        let encoded = padded.encode();
        handle_route(&mut encoded.clone(), &encoded.to_vec(), &stats, &routes).unwrap();
        assert_eq!(stats.route_cache_hits(), 0, "distinct bytes, fresh search");
        let after_padded = stats.route_search();
        assert_eq!(after_padded.oracle_calls, after_warm.oracle_calls);
        assert!(after_padded.plan_memo_hits > after_warm.plan_memo_hits);
    }

    #[test]
    fn route_handler_rejects_malformed_queries() {
        use velopt_common::units::Seconds;
        let stats = ServerStats::default();
        let routes = RouteService::new().unwrap();
        let mut request = RouteNetRequest::from_graph(
            &demo_route_graph(0),
            NodeId(0),
            NodeId(2),
            Seconds::new(0.0),
        );
        request.dest = 0; // origin == dest
        let encoded = request.encode();
        let err =
            handle_route(&mut encoded.clone(), &encoded.to_vec(), &stats, &routes).unwrap_err();
        assert!(err.to_string().contains("coincide"), "{err}");
        assert_eq!(stats.routes(), 0);
        assert!(routes.frames.read().is_empty(), "errors are not cached");
    }
}
