//! The cloud service: acceptor + crossbeam worker pool + plan cache.

use crate::protocol::{encode_profile, tags, write_frame, TripRequest};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use velopt_common::{Error, Result};
use velopt_core::dp::{DpConfig, DpOptimizer, StartState};
use velopt_core::windows::{green_only_constraints, queue_aware_constraints};
use velopt_ev_energy::{EnergyModel, RegenPolicy, VehicleParams};

/// Serving counters, exposed over the wire via `REQ_STATS`.
#[derive(Debug, Default)]
pub struct ServerStats {
    served: AtomicU64,
    cache_hits: AtomicU64,
}

impl ServerStats {
    /// Requests answered with a profile so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// How many of those came straight from the plan cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
}

type PlanCache = RwLock<HashMap<Vec<u8>, velopt_core::dp::OptimizedProfile>>;

/// The vehicular-cloud optimization server.
///
/// See the crate-level example.
#[derive(Debug)]
pub struct CloudServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl CloudServer {
    /// Binds an ephemeral localhost port and spawns `workers` optimization
    /// workers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for zero workers and [`Error::Io`]
    /// if the port cannot be bound.
    pub fn spawn(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(Error::invalid_input("need at least one worker"));
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let cache: Arc<PlanCache> = Arc::new(RwLock::new(HashMap::new()));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(64);
        let stop_acceptor = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_acceptor.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
        });

        let worker_handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let stats = Arc::clone(&stats);
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        let _ = serve_connection(stream, &stats, &cache, &stop);
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                })
            })
            .collect();

        Ok(Self {
            addr,
            stats,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor's blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor owned the only Sender; once it exits, workers drain
        // the channel and see Err on the next recv.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        // Signal but do not block (C-DTOR-BLOCK); `shutdown()` joins.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Reads one frame with a polling timeout so an idle connection cannot
/// wedge server shutdown; returns `None` on EOF or a stop request observed
/// between frames.
fn read_frame_stoppable(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<(u8, bytes::Bytes)>> {
    use std::io::Read;
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .ok();
    // Poll for the 4-byte length header; once any byte has arrived, finish
    // the frame even if a stop lands mid-read (never desync the stream).
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        if filled == 0 && stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut header[filled..]) {
            Ok(0) => return Ok(None), // EOF
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 || len > 64 * 1024 * 1024 {
        return Err(Error::protocol(format!("implausible frame length {len}")));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(Error::protocol("truncated frame")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut bytes = bytes::Bytes::from(body);
    let tag = bytes[0];
    bytes::Buf::advance(&mut bytes, 1);
    Ok(Some((tag, bytes)))
}

/// Handles every request on one connection until the client disconnects or
/// the server is stopped.
fn serve_connection(
    mut stream: TcpStream,
    stats: &ServerStats,
    cache: &PlanCache,
    stop: &AtomicBool,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        let Some((tag, mut payload)) = read_frame_stoppable(&mut stream, stop)? else {
            return Ok(()); // client done (or server stopping)
        };
        match tag {
            tags::REQ_TRIP => {
                let key = payload.to_vec();
                match handle_trip(&mut payload, &key, stats, cache) {
                    Ok(profile) => {
                        let mut buf = BytesMut::new();
                        encode_profile(&profile, &mut buf);
                        write_frame(&mut stream, tags::RESP_PROFILE, &buf)?;
                    }
                    Err(e) => {
                        write_frame(&mut stream, tags::RESP_ERROR, e.to_string().as_bytes())?;
                    }
                }
            }
            tags::REQ_STATS => {
                let mut buf = BytesMut::new();
                bytes::BufMut::put_u64(&mut buf, stats.served());
                bytes::BufMut::put_u64(&mut buf, stats.cache_hits());
                write_frame(&mut stream, tags::RESP_STATS, &buf)?;
            }
            other => {
                write_frame(
                    &mut stream,
                    tags::RESP_ERROR,
                    format!("unknown request tag {other}").as_bytes(),
                )?;
            }
        }
    }
}

fn handle_trip(
    payload: &mut bytes::Bytes,
    key: &[u8],
    stats: &ServerStats,
    cache: &PlanCache,
) -> Result<velopt_core::dp::OptimizedProfile> {
    if let Some(hit) = cache.read().get(key) {
        stats.served.fetch_add(1, Ordering::Relaxed);
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(hit.clone());
    }
    let request = TripRequest::decode(payload)?;
    request.validated()?;

    // The same physically-grounded model the local pipeline plans with.
    let energy = EnergyModel::with_regen(
        VehicleParams::spark_ev(),
        RegenPolicy::Limited {
            efficiency: 0.6,
            cutoff: velopt_common::units::MetersPerSecond::new(1.5),
        },
    );
    let config = DpConfig::default();
    let optimizer = DpOptimizer::new(energy, config)?;
    let constraints = if request.queue_aware {
        queue_aware_constraints(&request.road, &request.rates, request.queue, config.horizon)?
    } else {
        green_only_constraints(&request.road, config.horizon)
    };
    let profile = optimizer.optimize_from(
        &request.road,
        &constraints,
        StartState {
            time: request.departure,
            ..StartState::default()
        },
    )?;
    cache.write().insert(key.to_vec(), profile.clone());
    stats.served.fetch_add(1, Ordering::Relaxed);
    Ok(profile)
}

// Integration-style tests live with the client (`client.rs`) so they
// exercise the full wire path; protocol unit tests live in `protocol.rs`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_rejected() {
        assert!(CloudServer::spawn(0).is_err());
    }

    #[test]
    fn stats_start_at_zero() {
        let server = CloudServer::spawn(1).unwrap();
        assert_eq!(server.stats().served(), 0);
        assert_eq!(server.stats().cache_hits(), 0);
        server.shutdown();
    }

    #[test]
    fn trip_handler_caches_by_request_bytes() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());
        let req = TripRequest::us25_at(0.0);
        let encoded = req.encode();
        let key = encoded.to_vec();

        let mut payload = encoded.clone();
        let first = handle_trip(&mut payload, &key, &stats, &cache).unwrap();
        assert_eq!(stats.served(), 1);
        assert_eq!(stats.cache_hits(), 0);

        let mut payload = encoded.clone();
        let second = handle_trip(&mut payload, &key, &stats, &cache).unwrap();
        assert_eq!(stats.served(), 2);
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(first, second);
    }
}
