//! The cloud service: acceptor + crossbeam worker pool + plan cache.

use crate::protocol::{
    encode_profile, tags, write_frame, BatchPlanRequest, BatchPlanResponse, PredictBatchRequest,
    PredictBatchResponse, TripRequest,
};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use velopt_common::{Error, Result};
use velopt_core::batch::PlanRequest;
use velopt_core::dp::{DpConfig, DpOptimizer, SignalConstraint, StartState};
use velopt_core::windows::{green_only_constraints, queue_aware_constraints};
use velopt_ev_energy::{EnergyModel, RegenPolicy, VehicleParams};
use velopt_traffic::nn::SgdConfig;
use velopt_traffic::{
    SaeConfig, SaePredictorConfig, VolumeGenerator, VolumePredictor, VolumeQuery,
};

/// Per-frame-type request counters: how the server's inbound traffic is
/// split across the protocol. Returned by [`ServerStats::frame_counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounts {
    /// `REQ_TRIP` frames received.
    pub trips: u64,
    /// `REQ_BATCH` frames received.
    pub batches: u64,
    /// `REQ_STATS` frames received.
    pub stats: u64,
    /// `REQ_TELEMETRY` frames received.
    pub telemetry: u64,
    /// `REQ_PREDICT_BATCH` frames received.
    pub predicts: u64,
    /// Frames carrying an unknown tag.
    pub unknown: u64,
}

/// Serving counters, exposed over the wire via `REQ_STATS`.
#[derive(Debug, Default)]
pub struct ServerStats {
    served: AtomicU64,
    cache_hits: AtomicU64,
    batches: AtomicU64,
    solver_states_expanded: AtomicU64,
    solver_states_pruned: AtomicU64,
    connections: AtomicU64,
    frames_trip: AtomicU64,
    frames_stats: AtomicU64,
    frames_telemetry: AtomicU64,
    frames_unknown: AtomicU64,
    error_responses: AtomicU64,
    predict_frames: AtomicU64,
    predictor_cache_hits: AtomicU64,
    predictor_trainings: AtomicU64,
    predictions: AtomicU64,
}

impl ServerStats {
    /// Trips answered with a profile so far (batch members count
    /// individually).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// How many of those came straight from the plan cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Batch frames handled so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Connections accepted and handed to a worker so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Error frames sent back so far (rejected trips, malformed batches,
    /// unknown tags).
    pub fn error_responses(&self) -> u64 {
        self.error_responses.load(Ordering::Relaxed)
    }

    /// The inbound request mix, split by frame type.
    pub fn frame_counts(&self) -> FrameCounts {
        FrameCounts {
            trips: self.frames_trip.load(Ordering::Relaxed),
            batches: self.batches(),
            stats: self.frames_stats.load(Ordering::Relaxed),
            telemetry: self.frames_telemetry.load(Ordering::Relaxed),
            predicts: self.predict_frames.load(Ordering::Relaxed),
            unknown: self.frames_unknown.load(Ordering::Relaxed),
        }
    }

    /// Volume-forecast values served so far (`queries × horizons`, summed
    /// over every `REQ_PREDICT_BATCH`).
    pub fn predictions(&self) -> u64 {
        self.predictions.load(Ordering::Relaxed)
    }

    /// How the predictor cache behaved: `(cache hits, trainings)`. A
    /// training is one full SAE fit — the expensive path a warm cache
    /// avoids.
    pub fn predictor_cache(&self) -> (u64, u64) {
        (
            self.predictor_cache_hits.load(Ordering::Relaxed),
            self.predictor_trainings.load(Ordering::Relaxed),
        )
    }

    /// Counts one inbound frame by tag, mirrored into the telemetry
    /// registry's `cloud.req.*` counters.
    fn record_frame(&self, tag: u8) {
        match tag {
            tags::REQ_TRIP => {
                self.frames_trip.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.trip", 1);
            }
            tags::REQ_BATCH => {
                // `batches` itself is counted in `handle_batch` (which unit
                // tests also call directly, without a connection).
                telemetry::add("cloud.req.batch", 1);
            }
            tags::REQ_STATS => {
                self.frames_stats.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.stats", 1);
            }
            tags::REQ_TELEMETRY => {
                self.frames_telemetry.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.telemetry", 1);
            }
            tags::REQ_PREDICT_BATCH => {
                // `predict_frames` itself is counted in
                // `handle_predict_batch` (unit tests call it directly).
                telemetry::add("cloud.req.predict_batch", 1);
            }
            _ => {
                self.frames_unknown.fetch_add(1, Ordering::Relaxed);
                telemetry::add("cloud.req.unknown", 1);
            }
        }
    }

    fn record_error_response(&self) {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.resp.error", 1);
    }

    /// Aggregated [`SolverMetrics`](velopt_core::metrics::SolverMetrics)
    /// counters over every fresh (non-cached) solve: `(states expanded,
    /// states pruned)`. An operator watching these spot a pruning
    /// regression without attaching a profiler.
    pub fn solver_states(&self) -> (u64, u64) {
        (
            self.solver_states_expanded.load(Ordering::Relaxed),
            self.solver_states_pruned.load(Ordering::Relaxed),
        )
    }

    fn record_solve(&self, metrics: &velopt_core::metrics::SolverMetrics) {
        self.solver_states_expanded
            .fetch_add(metrics.states_expanded, Ordering::Relaxed);
        self.solver_states_pruned
            .fetch_add(metrics.states_pruned, Ordering::Relaxed);
    }
}

type PlanCache = RwLock<HashMap<Vec<u8>, velopt_core::dp::OptimizedProfile>>;

/// Trained volume predictors keyed by `(station seed, train weeks, lags)`.
/// Training an SAE is orders of magnitude more expensive than querying it,
/// so every connection shares one cache of [`Arc`]ed predictors and the
/// batched inference path runs on a clone of the handle outside the lock.
type PredictorCache = RwLock<HashMap<(u64, u32, u32), Arc<VolumePredictor>>>;

/// The vehicular-cloud optimization server.
///
/// See the crate-level example.
#[derive(Debug)]
pub struct CloudServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl CloudServer {
    /// Binds an ephemeral localhost port and spawns `workers` optimization
    /// workers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for zero workers and [`Error::Io`]
    /// if the port cannot be bound.
    pub fn spawn(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(Error::invalid_input("need at least one worker"));
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let cache: Arc<PlanCache> = Arc::new(RwLock::new(HashMap::new()));
        let predictors: Arc<PredictorCache> = Arc::new(RwLock::new(HashMap::new()));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(64);
        let stop_acceptor = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_acceptor.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
        });

        let worker_handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let stats = Arc::clone(&stats);
                let cache = Arc::clone(&cache);
                let predictors = Arc::clone(&predictors);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        let _ = serve_connection(stream, &stats, &cache, &predictors, &stop);
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                })
            })
            .collect();

        Ok(Self {
            addr,
            stats,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor's blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor owned the only Sender; once it exits, workers drain
        // the channel and see Err on the next recv.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        // Signal but do not block (C-DTOR-BLOCK); `shutdown()` joins.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Reads one frame with a polling timeout so an idle connection cannot
/// wedge server shutdown; returns `None` on EOF or a stop request observed
/// between frames.
fn read_frame_stoppable(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<(u8, bytes::Bytes)>> {
    use std::io::Read;
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .ok();
    // Poll for the 4-byte length header; once any byte has arrived, finish
    // the frame even if a stop lands mid-read (never desync the stream).
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        if filled == 0 && stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut header[filled..]) {
            Ok(0) => return Ok(None), // EOF
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 || len > 64 * 1024 * 1024 {
        return Err(Error::protocol(format!("implausible frame length {len}")));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(Error::protocol("truncated frame")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut bytes = bytes::Bytes::from(body);
    let tag = bytes[0];
    bytes::Buf::advance(&mut bytes, 1);
    Ok(Some((tag, bytes)))
}

/// Handles every request on one connection until the client disconnects or
/// the server is stopped.
fn serve_connection(
    mut stream: TcpStream,
    stats: &ServerStats,
    cache: &PlanCache,
    predictors: &PredictorCache,
    stop: &AtomicBool,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    stats.connections.fetch_add(1, Ordering::Relaxed);
    telemetry::add("cloud.connections", 1);
    loop {
        let Some((tag, mut payload)) = read_frame_stoppable(&mut stream, stop)? else {
            return Ok(()); // client done (or server stopping)
        };
        let _request_span = telemetry::span("cloud.request_seconds");
        stats.record_frame(tag);
        match tag {
            tags::REQ_TRIP => {
                let key = payload.to_vec();
                match handle_trip(&mut payload, &key, stats, cache) {
                    Ok(profile) => {
                        let encode_span = telemetry::span("cloud.encode_seconds");
                        let mut buf = BytesMut::new();
                        encode_profile(&profile, &mut buf);
                        drop(encode_span);
                        write_frame(&mut stream, tags::RESP_PROFILE, &buf)?;
                    }
                    Err(e) => {
                        stats.record_error_response();
                        write_frame(&mut stream, tags::RESP_ERROR, e.to_string().as_bytes())?;
                    }
                }
            }
            tags::REQ_BATCH => match handle_batch(&mut payload, stats, cache) {
                Ok(response) => {
                    let encode_span = telemetry::span("cloud.encode_seconds");
                    let encoded = response.encode();
                    drop(encode_span);
                    write_frame(&mut stream, tags::RESP_BATCH, &encoded)?;
                }
                Err(e) => {
                    stats.record_error_response();
                    write_frame(&mut stream, tags::RESP_ERROR, e.to_string().as_bytes())?;
                }
            },
            tags::REQ_PREDICT_BATCH => {
                match handle_predict_batch(&mut payload, stats, predictors) {
                    Ok(response) => {
                        let encode_span = telemetry::span("cloud.encode_seconds");
                        let encoded = response.encode();
                        drop(encode_span);
                        write_frame(&mut stream, tags::RESP_PREDICT_BATCH, &encoded)?;
                    }
                    Err(e) => {
                        stats.record_error_response();
                        write_frame(&mut stream, tags::RESP_ERROR, e.to_string().as_bytes())?;
                    }
                }
            }
            tags::REQ_STATS => {
                let mut buf = BytesMut::new();
                bytes::BufMut::put_u64(&mut buf, stats.served());
                bytes::BufMut::put_u64(&mut buf, stats.cache_hits());
                write_frame(&mut stream, tags::RESP_STATS, &buf)?;
            }
            tags::REQ_TELEMETRY => {
                write_frame(
                    &mut stream,
                    tags::RESP_TELEMETRY,
                    telemetry::snapshot_json().as_bytes(),
                )?;
            }
            other => {
                stats.record_error_response();
                write_frame(
                    &mut stream,
                    tags::RESP_ERROR,
                    format!("unknown request tag {other}").as_bytes(),
                )?;
            }
        }
    }
}

/// The optimizer every connection plans with: the same physically-grounded
/// model the local pipeline uses.
fn corridor_optimizer() -> Result<DpOptimizer> {
    let energy = EnergyModel::with_regen(
        VehicleParams::spark_ev(),
        RegenPolicy::Limited {
            efficiency: 0.6,
            cutoff: velopt_common::units::MetersPerSecond::new(1.5),
        },
    );
    DpOptimizer::new(energy, DpConfig::default())
}

/// Validates a trip and builds its per-signal arrival windows.
fn trip_constraints(trip: &TripRequest, config: &DpConfig) -> Result<Vec<SignalConstraint>> {
    trip.validated()?;
    if trip.queue_aware {
        queue_aware_constraints(&trip.road, &trip.rates, trip.queue, config.horizon)
    } else {
        Ok(green_only_constraints(&trip.road, config.horizon))
    }
}

fn handle_trip(
    payload: &mut bytes::Bytes,
    key: &[u8],
    stats: &ServerStats,
    cache: &PlanCache,
) -> Result<velopt_core::dp::OptimizedProfile> {
    if let Some(hit) = cache.read().get(key) {
        stats.served.fetch_add(1, Ordering::Relaxed);
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(hit.clone());
    }
    let decode_span = telemetry::span("cloud.decode_seconds");
    let request = TripRequest::decode(payload)?;
    drop(decode_span);
    let optimizer = corridor_optimizer()?;
    let constraints = trip_constraints(&request, optimizer.config())?;
    let plan_span = telemetry::span("cloud.plan_seconds");
    let profile = optimizer.optimize_from(
        &request.road,
        &constraints,
        StartState {
            time: request.departure,
            ..StartState::default()
        },
    )?;
    drop(plan_span);
    stats.record_solve(&profile.metrics);
    cache.write().insert(key.to_vec(), profile.clone());
    stats.served.fetch_add(1, Ordering::Relaxed);
    Ok(profile)
}

/// Plans a whole batch in one go: cached trips are answered immediately,
/// the misses fan out over the cores via
/// [`DpOptimizer::optimize_batch`], and per-trip failures come back as
/// error entries in request order (they never sink the batch).
fn handle_batch(
    payload: &mut bytes::Bytes,
    stats: &ServerStats,
    cache: &PlanCache,
) -> Result<BatchPlanResponse> {
    let decode_span = telemetry::span("cloud.decode_seconds");
    let batch = BatchPlanRequest::decode(payload)?;
    drop(decode_span);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    let n = batch.trips.len();
    let mut results: Vec<Option<std::result::Result<velopt_core::dp::OptimizedProfile, String>>> =
        (0..n).map(|_| None).collect();

    // Cache pass first — a batch member's key is its canonical encoding,
    // the same bytes a single `REQ_TRIP` for that trip would carry.
    let keys: Vec<Vec<u8>> = batch.trips.iter().map(|t| t.encode().to_vec()).collect();
    {
        let cache = cache.read();
        for (i, key) in keys.iter().enumerate() {
            if let Some(hit) = cache.get(key) {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                results[i] = Some(Ok(hit.clone()));
            }
        }
    }

    // Validate the misses and build their arrival windows; invalid trips
    // become error entries right here.
    let optimizer = corridor_optimizer()?;
    let mut prepared: Vec<(usize, Vec<SignalConstraint>)> = Vec::new();
    for (i, trip) in batch.trips.iter().enumerate() {
        if results[i].is_some() {
            continue;
        }
        match trip_constraints(trip, optimizer.config()) {
            Ok(constraints) => prepared.push((i, constraints)),
            Err(e) => results[i] = Some(Err(e.to_string())),
        }
    }

    let requests: Vec<PlanRequest<'_>> = prepared
        .iter()
        .map(|(i, constraints)| PlanRequest {
            road: &batch.trips[*i].road,
            signals: constraints,
            start: StartState {
                time: batch.trips[*i].departure,
                ..StartState::default()
            },
        })
        .collect();
    let plan_span = telemetry::span("cloud.plan_seconds");
    let planned_batch = optimizer.optimize_batch(&requests);
    drop(plan_span);
    for ((i, _), planned) in prepared.iter().zip(planned_batch) {
        match planned {
            Ok(profile) => {
                stats.record_solve(&profile.metrics);
                cache.write().insert(keys[*i].clone(), profile.clone());
                results[*i] = Some(Ok(profile));
            }
            Err(e) => results[*i] = Some(Err(e.to_string())),
        }
    }
    stats.served.fetch_add(n as u64, Ordering::Relaxed);
    Ok(BatchPlanResponse {
        results: results
            .into_iter()
            .map(|r| r.expect("every batch member answered"))
            .collect(),
    })
}

/// The SAE recipe the service trains cache misses with: mini-batch SGD on
/// the gemm kernels, sized for serving latency rather than paper-figure
/// fidelity (the full recipe lives in `SaePredictorConfig::default`).
fn service_predictor_config(lags: usize) -> SaePredictorConfig {
    let sgd = |epochs| SgdConfig {
        epochs,
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size: 16,
        threads: 1,
    };
    SaePredictorConfig {
        lags,
        sae: SaeConfig {
            hidden_layers: vec![16, 8],
            pretrain: sgd(6),
            finetune: sgd(40),
            ..SaeConfig::default()
        },
    }
}

/// Answers a volume-forecast batch from the shared predictor cache,
/// training (and caching) a predictor on the first request for a given
/// `(station seed, train weeks, lags)`. Inference runs outside the cache
/// lock on a cloned [`Arc`], so a slow training never blocks forecasts
/// against already-warm predictors.
fn handle_predict_batch(
    payload: &mut bytes::Bytes,
    stats: &ServerStats,
    predictors: &PredictorCache,
) -> Result<PredictBatchResponse> {
    let decode_span = telemetry::span("cloud.decode_seconds");
    let request = PredictBatchRequest::decode(payload)?;
    drop(decode_span);
    stats.predict_frames.fetch_add(1, Ordering::Relaxed);
    request.validated()?;
    if request.queries.is_empty() {
        return Ok(PredictBatchResponse::default());
    }
    let lags = request.queries[0].history.len() as u32;
    let key = (request.station_seed, request.train_weeks, lags);
    // Look up and drop the read guard before the (possibly training) miss
    // path: an `if let` on the guard itself would hold it across the
    // `write()` below and self-deadlock.
    let cached = predictors.read().get(&key).map(Arc::clone);
    let predictor = if let Some(hit) = cached {
        stats.predictor_cache_hits.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.predictor.cache_hits", 1);
        hit
    } else {
        let train_span = telemetry::span("cloud.predictor_train_seconds");
        let feed = VolumeGenerator::us25_station(request.station_seed)
            .generate_weeks(request.train_weeks as usize)?;
        let trained = Arc::new(VolumePredictor::train(
            &feed,
            &service_predictor_config(lags as usize),
        )?);
        drop(train_span);
        stats.predictor_trainings.fetch_add(1, Ordering::Relaxed);
        telemetry::add("cloud.predictor.trainings", 1);
        // A concurrent training of the same key may have won the race;
        // keep whichever landed first so repeat queries stay consistent.
        Arc::clone(
            predictors
                .write()
                .entry(key)
                .or_insert_with(|| Arc::clone(&trained)),
        )
    };
    let queries: Vec<VolumeQuery> = request
        .queries
        .iter()
        .map(|q| VolumeQuery {
            history: q.history.clone(),
            hour_index: q.hour_index as usize,
        })
        .collect();
    let predict_span = telemetry::span("cloud.predict_seconds");
    let rows = predictor.predict_batch(&queries, request.horizons as usize)?;
    drop(predict_span);
    let volumes: Vec<Vec<f64>> = rows
        .into_iter()
        .map(|row| row.into_iter().map(|v| v.value()).collect())
        .collect();
    let served = (volumes.len() * request.horizons as usize) as u64;
    stats.predictions.fetch_add(served, Ordering::Relaxed);
    telemetry::add("cloud.predictions", served);
    Ok(PredictBatchResponse { volumes })
}

// Integration-style tests live with the client (`client.rs`) so they
// exercise the full wire path; protocol unit tests live in `protocol.rs`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_rejected() {
        assert!(CloudServer::spawn(0).is_err());
    }

    #[test]
    fn stats_start_at_zero() {
        let server = CloudServer::spawn(1).unwrap();
        assert_eq!(server.stats().served(), 0);
        assert_eq!(server.stats().cache_hits(), 0);
        server.shutdown();
    }

    #[test]
    fn trip_handler_caches_by_request_bytes() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());
        let req = TripRequest::us25_at(0.0);
        let encoded = req.encode();
        let key = encoded.to_vec();

        let mut payload = encoded.clone();
        let first = handle_trip(&mut payload, &key, &stats, &cache).unwrap();
        assert_eq!(stats.served(), 1);
        assert_eq!(stats.cache_hits(), 0);

        let mut payload = encoded.clone();
        let second = handle_trip(&mut payload, &key, &stats, &cache).unwrap();
        assert_eq!(stats.served(), 2);
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(first, second);
        // Only the fresh solve contributed solver counters.
        let (expanded, _) = stats.solver_states();
        assert_eq!(expanded, first.metrics.states_expanded);
    }

    #[test]
    fn batch_handler_mixes_cache_fresh_and_errors() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());

        // Prime the cache with the t=0 trip through the single-trip path.
        let seed = TripRequest::us25_at(0.0);
        let encoded = seed.encode();
        let cached_profile =
            handle_trip(&mut encoded.clone(), &encoded.to_vec(), &stats, &cache).unwrap();

        let mut invalid = TripRequest::us25_at(30.0);
        invalid.rates.pop(); // arity mismatch
        let batch = BatchPlanRequest {
            trips: vec![
                TripRequest::us25_at(0.0),
                invalid,
                TripRequest::us25_at(60.0),
            ],
        };
        let mut payload = batch.encode();
        let response = handle_batch(&mut payload, &stats, &cache).unwrap();
        assert_eq!(response.results.len(), 3);
        // Member 0 came from the cache (same plan, one more hit).
        assert_eq!(response.results[0].as_ref().unwrap(), &cached_profile);
        assert_eq!(stats.cache_hits(), 1);
        // Member 1 failed alone.
        assert!(response.results[1].as_ref().unwrap_err().contains("rates"));
        // Member 2 was solved fresh and is now cached.
        assert!(response.results[2].is_ok());
        assert_eq!(stats.served(), 1 + 3);
        assert_eq!(stats.batches(), 1);
        let key = TripRequest::us25_at(60.0).encode().to_vec();
        assert!(cache.read().contains_key(&key));
    }

    #[test]
    fn predict_handler_trains_once_then_hits_the_cache() {
        use crate::protocol::PredictQuery;
        let stats = ServerStats::default();
        let predictors: PredictorCache = RwLock::new(HashMap::new());
        let feed = VolumeGenerator::us25_station(11).generate_weeks(2).unwrap();
        let lags = 12;
        let request = PredictBatchRequest {
            station_seed: 11,
            train_weeks: 2,
            horizons: 3,
            queries: vec![
                PredictQuery {
                    history: feed.samples()[..lags].to_vec(),
                    hour_index: lags as u64,
                },
                PredictQuery {
                    history: feed.samples()[feed.len() - lags..].to_vec(),
                    hour_index: feed.len() as u64,
                },
            ],
        };
        let mut payload = request.encode();
        let first = handle_predict_batch(&mut payload, &stats, &predictors).unwrap();
        assert_eq!(first.volumes.len(), 2);
        assert!(first
            .volumes
            .iter()
            .all(|row| row.len() == 3 && row.iter().all(|v| v.is_finite() && *v >= 0.0)));
        assert_eq!(stats.predictor_cache(), (0, 1));
        assert_eq!(stats.predictions(), 6);

        let mut payload = request.encode();
        let second = handle_predict_batch(&mut payload, &stats, &predictors).unwrap();
        assert_eq!(second, first, "a cached predictor answers identically");
        assert_eq!(stats.predictor_cache(), (1, 1));
        assert_eq!(stats.predictions(), 12);
        assert_eq!(stats.frame_counts().predicts, 2);
    }

    #[test]
    fn predict_handler_rejects_invalid_requests() {
        use crate::protocol::PredictQuery;
        let stats = ServerStats::default();
        let predictors: PredictorCache = RwLock::new(HashMap::new());
        let request = PredictBatchRequest {
            station_seed: 1,
            train_weeks: 0, // degenerate training window
            horizons: 2,
            queries: vec![PredictQuery {
                history: vec![10.0; 12],
                hour_index: 0,
            }],
        };
        let mut payload = request.encode();
        assert!(handle_predict_batch(&mut payload, &stats, &predictors).is_err());
        assert!(predictors.read().is_empty(), "nothing trained or cached");
    }

    #[test]
    fn batch_equals_sequential_trip_requests() {
        let stats = ServerStats::default();
        let cache: PlanCache = RwLock::new(HashMap::new());
        let trips = vec![TripRequest::us25_at(0.0), TripRequest::us25_at(45.0)];

        let singles: Vec<_> = trips
            .iter()
            .map(|t| {
                let fresh_cache: PlanCache = RwLock::new(HashMap::new());
                let encoded = t.encode();
                handle_trip(
                    &mut encoded.clone(),
                    &encoded.to_vec(),
                    &stats,
                    &fresh_cache,
                )
                .unwrap()
            })
            .collect();

        let batch = BatchPlanRequest { trips };
        let mut payload = batch.encode();
        let response = handle_batch(&mut payload, &stats, &cache).unwrap();
        for (single, batched) in singles.iter().zip(&response.results) {
            assert_eq!(batched.as_ref().unwrap(), single);
        }
    }
}
