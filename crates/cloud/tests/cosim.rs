//! Co-simulation serving tests: the request-coalescing layer under the
//! correlated load the fleet driver produces — single-flight dedupe of a
//! replan storm, batch flushes on count and on timeout, per-tenant
//! admission fairness, tenant stats attribution, and bit-identity of
//! coalesced plans against uncoalesced serving.
//!
//! This file is the `cargo test -p velopt-cloud --test cosim` CI gate.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use velopt_cloud::protocol::{
    decode_hello, decode_profile, encode_hello, read_frame, tags, write_frame, TripRequest,
};
use velopt_cloud::{CloudClient, CloudServer, ServerConfig};

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
}

/// Sends one frame without waiting for the response.
fn send(stream: &mut TcpStream, tag: u8, payload: &[u8]) {
    let mut out = Vec::new();
    write_frame(&mut out, tag, payload).unwrap();
    stream.write_all(&out).unwrap();
}

/// Reads the next response frame.
fn recv(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    let (tag, payload) = read_frame(stream).unwrap().expect("connection open");
    (tag, payload.to_vec())
}

/// Sends one frame and waits for its response.
fn round_trip(stream: &mut TcpStream, tag: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    send(stream, tag, payload);
    recv(stream)
}

/// Opens a raw connection greeted as `tenant`.
fn connect_as(addr: SocketAddr, tenant: u32) -> TcpStream {
    let mut stream = connect(addr);
    let (tag, payload) = round_trip(&mut stream, tags::REQ_HELLO, &encode_hello(tenant));
    assert_eq!(tag, tags::RESP_HELLO);
    assert_eq!(decode_hello(&payload).unwrap(), tenant);
    stream
}

/// A replan storm: N vehicles upload the *same* trip in the same window.
/// Exactly one DP solve runs; every client receives bit-identical frames;
/// the coalesce counters are exact (not merely bounded).
#[test]
fn identical_storm_is_single_flighted() {
    const VEHICLES: usize = 8;
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 2,
        coalesce_window: Duration::from_secs(30),
        batch_max: VEHICLES,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let trip = TripRequest::us25_at(90.0).encode();

    let barrier = Arc::new(Barrier::new(VEHICLES));
    let frames: Vec<(u8, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..VEHICLES)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let trip = trip.clone();
                scope.spawn(move || {
                    let mut stream = connect(addr);
                    barrier.wait();
                    round_trip(&mut stream, tags::REQ_TRIP, &trip)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (tag, payload) in &frames {
        assert_eq!(*tag, tags::RESP_PROFILE);
        assert_eq!(
            payload, &frames[0].1,
            "coalesced waiters must share one encoding"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.served(), VEHICLES as u64);
    assert_eq!(stats.coalesce_hits(), VEHICLES as u64 - 1);
    assert_eq!(stats.coalesce_flights(), 1);
    assert_eq!(stats.batch_flushes(), 1);
    // Dedupe is not the cache: nothing was answered from a prior plan.
    assert_eq!(stats.cache_hits(), 0);
    // The one solve that ran reports its relax-kernel dispatch mix: every
    // row went through exactly one kernel flavor, whichever the host
    // selected, so the combined row count is positive.
    let (simd_rows, scalar_rows) = stats.dp_simd_rows();
    assert!(
        simd_rows + scalar_rows > 0,
        "a fresh solve must report its kernel dispatch mix"
    );
    // Stateless per-request serving never engages warm-start repair.
    assert_eq!(stats.dp_repair(), (0, 0));
    server.shutdown();
}

/// Reaching `batch_max` waiters flushes immediately — distinct trips in
/// one window become one `optimize_batch` call, long before the (here
/// deliberately enormous) collection window would expire.
#[test]
fn distinct_requests_batch_flush_on_count() {
    const TRIPS: usize = 3;
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 2,
        coalesce_window: Duration::from_secs(600),
        batch_max: TRIPS,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let start = Instant::now();
    let barrier = Arc::new(Barrier::new(TRIPS));
    let payloads: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TRIPS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let trip = TripRequest::us25_at(i as f64 * 60.0).encode();
                    let mut stream = connect(addr);
                    barrier.wait();
                    let (tag, payload) = round_trip(&mut stream, tags::REQ_TRIP, &trip);
                    assert_eq!(tag, tags::RESP_PROFILE);
                    payload
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "count-triggered flush must not wait out the window"
    );
    assert_ne!(payloads[0], payloads[1], "distinct trips, distinct plans");

    let stats = server.stats();
    assert_eq!(stats.coalesce_flights(), TRIPS as u64);
    assert_eq!(stats.coalesce_hits(), 0);
    assert_eq!(stats.batch_flushes(), 1);
    server.shutdown();
}

/// A window that never fills still flushes when `coalesce_window`
/// elapses, and never *before* it: the flusher thread owns the deadline.
#[test]
fn underfull_window_flushes_on_timeout() {
    let window = Duration::from_millis(80);
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 1,
        coalesce_window: window,
        batch_max: 1000,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = connect(server.addr());

    let start = Instant::now();
    let (tag, _) = round_trip(
        &mut stream,
        tags::REQ_TRIP,
        &TripRequest::us25_at(30.0).encode(),
    );
    assert_eq!(tag, tags::RESP_PROFILE);
    assert!(
        start.elapsed() >= window,
        "a lone waiter can only be released by the deadline, got {:?}",
        start.elapsed()
    );
    let stats = server.stats();
    assert_eq!(stats.batch_flushes(), 1);
    assert_eq!(stats.coalesce_flights(), 1);
    assert_eq!(stats.coalesce_hits(), 0);
    server.shutdown();
}

/// Per-tenant admission: a tenant that floods the window gets refused
/// beyond its in-flight ceiling while another tenant's request sails
/// through the same window — greed cannot starve a neighbour.
#[test]
fn greedy_tenant_cannot_starve_another() {
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 1,
        coalesce_window: Duration::from_millis(400),
        batch_max: 1000,
        tenant_max_inflight: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut greedy_a = connect_as(addr, 1);
    let mut greedy_b = connect_as(addr, 1);
    let mut neighbour = connect_as(addr, 2);

    // The greedy tenant parks its one allowed waiter...
    send(
        &mut greedy_a,
        tags::REQ_TRIP,
        &TripRequest::us25_at(0.0).encode(),
    );
    std::thread::sleep(Duration::from_millis(100));
    // ...and its second, distinct request is refused immediately, inside
    // the still-open window.
    let refusal = Instant::now();
    send(
        &mut greedy_b,
        tags::REQ_TRIP,
        &TripRequest::us25_at(60.0).encode(),
    );
    let (tag, payload) = recv(&mut greedy_b);
    assert_eq!(tag, tags::RESP_ERROR);
    assert!(
        String::from_utf8_lossy(&payload).contains("admission limit"),
        "unexpected refusal: {}",
        String::from_utf8_lossy(&payload)
    );
    assert!(
        refusal.elapsed() < Duration::from_millis(300),
        "refusal must not wait for the flush"
    );
    // The other tenant is admitted into the very same window.
    send(
        &mut neighbour,
        tags::REQ_TRIP,
        &TripRequest::us25_at(120.0).encode(),
    );
    let (tag, _) = recv(&mut neighbour);
    assert_eq!(tag, tags::RESP_PROFILE);
    let (tag, _) = recv(&mut greedy_a);
    assert_eq!(tag, tags::RESP_PROFILE);

    let stats = server.stats();
    assert_eq!(stats.tenant_served(1), 1);
    assert_eq!(stats.tenant_rejected(1), 1);
    assert_eq!(stats.tenant_served(2), 1);
    assert_eq!(stats.tenant_rejected(2), 0);

    // The flush released tenant 1's admission slot: it may plan again.
    let (tag, _) = round_trip(
        &mut greedy_b,
        tags::REQ_TRIP,
        &TripRequest::us25_at(60.0).encode(),
    );
    assert_eq!(tag, tags::RESP_PROFILE);
    assert_eq!(server.stats().tenant_served(1), 2);
    server.shutdown();
}

/// Tenant stats attribution regression: when one coalesced solve fans out
/// to waiters of *different* tenants, each response lands in its own
/// tenant's served bucket — and a later plan-cache hit is attributed to
/// the requesting tenant, not the one whose miss populated the cache.
#[test]
fn coalesced_fanout_attributes_stats_per_tenant() {
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 2,
        coalesce_window: Duration::from_secs(30),
        batch_max: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let trip = TripRequest::us25_at(150.0).encode();

    let barrier = Arc::new(Barrier::new(2));
    let frames: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = [7u32, 9]
            .into_iter()
            .map(|tenant| {
                let barrier = Arc::clone(&barrier);
                let trip = trip.clone();
                scope.spawn(move || {
                    let mut stream = connect_as(addr, tenant);
                    barrier.wait();
                    let (tag, payload) = round_trip(&mut stream, tags::REQ_TRIP, &trip);
                    assert_eq!(tag, tags::RESP_PROFILE);
                    payload
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(frames[0], frames[1]);

    let stats = server.stats();
    assert_eq!(stats.coalesce_hits(), 1);
    assert_eq!(stats.coalesce_flights(), 1);
    assert_eq!(stats.tenant_served(7), 1);
    assert_eq!(stats.tenant_served(9), 1);
    assert_eq!(
        stats.tenant_served(0),
        0,
        "no leak into the anonymous bucket"
    );

    // Tenant 9 re-requests the now-cached trip: the hit is credited to
    // tenant 9 alone.
    let mut stream = connect_as(addr, 9);
    let (tag, payload) = round_trip(&mut stream, tags::REQ_TRIP, &trip);
    assert_eq!(tag, tags::RESP_PROFILE);
    assert_eq!(payload, frames[0]);
    let stats = server.stats();
    assert_eq!(stats.cache_hits(), 1);
    assert_eq!(stats.tenant_served(9), 2);
    assert_eq!(stats.tenant_served(7), 1);
    server.shutdown();
}

/// Acceptance: coalesced serving is bit-identical to uncoalesced serving
/// — same wire bytes, and the decoded profiles match down to
/// `f64::to_bits` on every sample.
#[test]
fn coalesced_plans_are_bit_identical_to_uncoalesced() {
    let trips: Vec<Vec<u8>> = [0.0, 45.0, 90.0]
        .iter()
        .map(|&d| TripRequest::us25_at(d).encode().to_vec())
        .collect();

    // Reference: a server with coalescing off (the default config).
    let reference_server = CloudServer::spawn(1).unwrap();
    let mut stream = connect(reference_server.addr());
    let reference: Vec<Vec<u8>> = trips
        .iter()
        .map(|t| {
            let (tag, payload) = round_trip(&mut stream, tags::REQ_TRIP, t);
            assert_eq!(tag, tags::RESP_PROFILE);
            payload
        })
        .collect();
    reference_server.shutdown();

    // Candidate: the same trips as one coalesced storm, three waiters per
    // trip.
    const WAITERS_PER_TRIP: usize = 3;
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 2,
        coalesce_window: Duration::from_secs(30),
        batch_max: WAITERS_PER_TRIP * 3,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(WAITERS_PER_TRIP * trips.len()));
    let coalesced: Vec<(usize, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WAITERS_PER_TRIP * trips.len())
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let trip_idx = i % trips.len();
                let trip = trips[trip_idx].clone();
                scope.spawn(move || {
                    let mut stream = connect(addr);
                    barrier.wait();
                    let (tag, payload) = round_trip(&mut stream, tags::REQ_TRIP, &trip);
                    assert_eq!(tag, tags::RESP_PROFILE);
                    (trip_idx, payload)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The wire frame carries solver metrics (timings, memo hits) that
    // legitimately differ between batch and single solving, so the
    // comparison is on the decoded *plan*: every station, speed, time,
    // and energy value must match down to the exact bit pattern.
    for (trip_idx, payload) in &coalesced {
        let mut bytes = bytes::Bytes::from(payload.clone());
        let candidate = decode_profile(&mut bytes).unwrap();
        let mut bytes = bytes::Bytes::from(reference[*trip_idx].clone());
        let expected = decode_profile(&mut bytes).unwrap();
        assert_eq!(candidate, expected, "plan differs for trip {trip_idx}");
        assert_eq!(candidate.stations.len(), expected.stations.len());
        for i in 0..candidate.stations.len() {
            assert_eq!(
                candidate.stations[i].value().to_bits(),
                expected.stations[i].value().to_bits()
            );
            assert_eq!(
                candidate.speeds[i].value().to_bits(),
                expected.speeds[i].value().to_bits()
            );
            assert_eq!(
                candidate.times[i].value().to_bits(),
                expected.times[i].value().to_bits()
            );
        }
        assert_eq!(
            candidate.total_energy.value().to_bits(),
            expected.total_energy.value().to_bits()
        );
        assert_eq!(
            candidate.trip_time.value().to_bits(),
            expected.trip_time.value().to_bits()
        );
        assert_eq!(candidate.window_violations, expected.window_violations);
    }
    let stats = server.stats();
    assert_eq!(stats.coalesce_flights(), trips.len() as u64);
    assert_eq!(
        stats.coalesce_hits(),
        (WAITERS_PER_TRIP as u64 - 1) * trips.len() as u64
    );
    server.shutdown();
}

/// Coalescing composes with the high-level client: a `CloudClient` that
/// greeted a tenant keeps its FIFO request/response discipline through
/// the coalescer, including across repeated (cached) requests.
#[test]
fn cloud_client_round_trips_through_the_coalescer() {
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 1,
        coalesce_window: Duration::from_millis(20),
        batch_max: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = CloudClient::connect(server.addr()).unwrap();
    client.hello(4).unwrap();
    let trip = TripRequest::us25_at(15.0);
    let first = client.request(&trip).unwrap();
    let second = client.request(&trip).unwrap();
    assert_eq!(first, second);
    let stats = server.stats();
    assert_eq!(stats.served(), 2);
    assert_eq!(stats.cache_hits(), 1);
    assert_eq!(stats.tenant_served(4), 2);
    assert_eq!(stats.coalesce_flights(), 1);
    server.shutdown();
}
