//! Concurrent-load integration tests for the sharded reactor: many more
//! simultaneous connections than compute workers, mixed frame types,
//! deliberately fragmented writes, the connection ceiling, and wire-level
//! byte stability of every response path.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use velopt_cloud::protocol::{
    decode_profile, encode_profile, read_frame, tags, write_frame, BatchPlanRequest,
    BatchPlanResponse, PredictBatchRequest, PredictQuery, TripRequest,
};
use velopt_cloud::{CloudClient, CloudServer, ServerConfig};
use velopt_traffic::VolumeGenerator;

/// A complete wire frame for `payload` under `tag`.
fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, tag, payload).unwrap();
    out
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
}

/// One raw request/response round trip on `stream`.
fn round_trip(stream: &mut TcpStream, tag: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    stream.write_all(&frame(tag, payload)).unwrap();
    let (tag, payload) = read_frame(stream).unwrap().expect("connection open");
    (tag, payload.to_vec())
}

/// One raw round trip on a fresh connection.
fn fetch_raw(addr: std::net::SocketAddr, tag: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    let mut stream = connect(addr);
    round_trip(&mut stream, tag, payload)
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn sample_predict_request(seed: u64) -> PredictBatchRequest {
    let feed = VolumeGenerator::us25_station(seed)
        .generate_weeks(2)
        .unwrap();
    let lags = 12;
    PredictBatchRequest {
        station_seed: seed,
        train_weeks: 2,
        horizons: 3,
        queries: vec![PredictQuery {
            history: feed.samples()[..lags].to_vec(),
            hour_index: lags as u64,
        }],
    }
}

/// The acceptance scenario: 128 simultaneous clients against 4 compute
/// workers, mixed trip / predict / telemetry traffic, a quarter of the
/// clients dribbling their request bytes a few at a time. Every client
/// must get its answer, and every plan must be bit-identical to the
/// single-client wire bytes for the same trip.
#[test]
fn concurrent_mixed_load_served_completely() {
    const CLIENTS: usize = 128;
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 4,
        shards: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Warm the plan and predictor caches through one ordinary client, so
    // the concurrent wave measures serving concurrency rather than
    // queueing 128 DP solves behind 4 workers.
    let departures = [0.0, 60.0, 120.0, 180.0];
    let predict = sample_predict_request(11);
    let mut warm = CloudClient::connect(addr).unwrap();
    for &d in &departures {
        warm.request(&TripRequest::us25_at(d)).unwrap();
    }
    warm.predict_batch(&predict).unwrap();
    drop(warm);

    // Single-client reference bytes for every trip and for the forecast.
    let trip_reference: Arc<Vec<(u8, Vec<u8>)>> = Arc::new(
        departures
            .iter()
            .map(|&d| fetch_raw(addr, tags::REQ_TRIP, &TripRequest::us25_at(d).encode()))
            .collect(),
    );
    let predict_reference = Arc::new(fetch_raw(addr, tags::REQ_PREDICT_BATCH, &predict.encode()));
    assert_eq!(trip_reference[0].0, tags::RESP_PROFILE);
    assert_eq!(predict_reference.0, tags::RESP_PREDICT_BATCH);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let trip_reference = Arc::clone(&trip_reference);
            let predict_reference = Arc::clone(&predict_reference);
            let predict = predict.clone();
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                barrier.wait();
                match i % 4 {
                    // Ordinary single-write trip request.
                    0 => {
                        let dep = (i / 4) % 4;
                        let payload = TripRequest::us25_at(dep as f64 * 60.0).encode();
                        let response = round_trip(&mut stream, tags::REQ_TRIP, &payload);
                        assert_eq!(response, trip_reference[dep], "client {i} plan differs");
                    }
                    // Volume forecast against the warmed predictor.
                    1 => {
                        let response =
                            round_trip(&mut stream, tags::REQ_PREDICT_BATCH, &predict.encode());
                        assert_eq!(response, *predict_reference, "client {i} forecast differs");
                    }
                    // Telemetry snapshot.
                    2 => {
                        let (tag, payload) = round_trip(&mut stream, tags::REQ_TELEMETRY, &[]);
                        assert_eq!(tag, tags::RESP_TELEMETRY);
                        let json = String::from_utf8(payload).unwrap();
                        assert!(json.starts_with('{'), "client {i}: {json}");
                    }
                    // Trip request dribbled a few bytes at a time, forcing
                    // the shard to assemble the frame across many partial
                    // reads interleaved with other connections.
                    _ => {
                        let dep = (i / 4) % 4;
                        let payload = TripRequest::us25_at(dep as f64 * 60.0).encode();
                        let bytes = frame(tags::REQ_TRIP, &payload);
                        for chunk in bytes.chunks(3) {
                            stream.write_all(chunk).unwrap();
                            std::thread::yield_now();
                        }
                        let (tag, payload) = read_frame(&mut stream).unwrap().expect("open");
                        assert_eq!((tag, payload.to_vec()), trip_reference[dep]);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    let stats = server.stats();
    // 4 warm solves, then 4 reference + 64 client trips all from the cache.
    assert_eq!(stats.served(), 72);
    assert_eq!(stats.cache_hits(), 68);
    assert_eq!(stats.plan_encode_skipped(), 68);
    // One SAE training, every later forecast a predictor-cache hit.
    assert_eq!(stats.predictor_cache(), (33, 1));
    // warm + 4 trip references + 1 predict reference + 128 clients.
    assert_eq!(stats.accepted(), 134);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.error_responses(), 0);
    let counts = stats.frame_counts();
    assert_eq!(counts.trips, 72);
    assert_eq!(counts.predicts, 34);
    assert_eq!(counts.telemetry, 32);
    assert_eq!(counts.unknown, 0);
    // Pooled responses (predict/telemetry/error paths) recycled buffers
    // once the per-shard pools warmed up.
    let (reuse, alloc) = stats.buffer_pool();
    assert!(reuse + alloc >= 66, "{reuse} reuses + {alloc} allocs");
    // Every client has hung up; the reactor notices and drains.
    wait_until("connections to drain", Duration::from_secs(30), || {
        stats.active_connections() == 0
    });
    server.shutdown();
}

#[test]
fn connection_ceiling_refuses_with_error_frame() {
    let server = CloudServer::spawn_with(ServerConfig {
        compute_workers: 1,
        shards: 1,
        max_connections: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut a = CloudClient::connect(addr).unwrap();
    let mut b = CloudClient::connect(addr).unwrap();
    a.stats().unwrap();
    b.stats().unwrap();

    // The third connection is refused with an explanatory error frame and
    // closed — not silently wedged.
    let mut third = connect(addr);
    let (tag, payload) = read_frame(&mut third).unwrap().expect("refusal frame");
    assert_eq!(tag, tags::RESP_ERROR);
    assert!(
        String::from_utf8_lossy(&payload).contains("capacity"),
        "unexpected refusal message"
    );
    assert!(
        read_frame(&mut third).unwrap().is_none(),
        "refused connection must be closed"
    );
    assert_eq!(server.stats().accepted(), 2);
    assert_eq!(server.stats().rejected(), 1);
    assert_eq!(server.stats().active_connections(), 2);
    // Capacity refusals are not protocol errors.
    assert_eq!(server.stats().error_responses(), 0);

    // Hanging up frees the slot for the next vehicle.
    drop(a);
    wait_until("slot to free", Duration::from_secs(30), || {
        server.stats().active_connections() == 1
    });
    let mut c = CloudClient::connect(addr).unwrap();
    c.stats().unwrap();
    assert_eq!(server.stats().accepted(), 3);
    server.shutdown();
}

/// Wire-level byte stability: a cache hit serves the *same bytes* as the
/// miss that populated it, those bytes are the canonical profile encoding,
/// and every other response path keeps serving on the same connection.
#[test]
fn wire_responses_are_byte_stable() {
    let server = CloudServer::spawn(1).unwrap();
    let addr = server.addr();
    let mut stream = connect(addr);
    let trip = TripRequest::us25_at(0.0);

    let (tag, miss) = round_trip(&mut stream, tags::REQ_TRIP, &trip.encode());
    assert_eq!(tag, tags::RESP_PROFILE);
    let (tag, hit) = round_trip(&mut stream, tags::REQ_TRIP, &trip.encode());
    assert_eq!(tag, tags::RESP_PROFILE);
    assert_eq!(miss, hit, "cache hit must serve the miss's exact bytes");
    assert_eq!(server.stats().plan_encode_skipped(), 1);

    // The served payload is exactly `encode_profile` of the decoded plan —
    // the zero-copy path introduced no framing drift.
    let mut payload = bytes::Bytes::from(miss.clone());
    let profile = decode_profile(&mut payload).unwrap();
    let mut reencoded = bytes::BytesMut::new();
    encode_profile(&profile, &mut reencoded);
    assert_eq!(&miss[..], &reencoded[..]);

    // A batch answering from the same cache returns the same profile.
    let batch = BatchPlanRequest {
        trips: vec![trip.clone()],
    };
    let (tag, payload) = round_trip(&mut stream, tags::REQ_BATCH, &batch.encode());
    assert_eq!(tag, tags::RESP_BATCH);
    let mut payload = bytes::Bytes::from(payload);
    let response = BatchPlanResponse::decode(&mut payload).unwrap();
    assert_eq!(response.results[0].as_ref().unwrap(), &profile);

    // Stats frames carry the live counters, big-endian.
    let (tag, payload) = round_trip(&mut stream, tags::REQ_STATS, &[]);
    assert_eq!(tag, tags::RESP_STATS);
    assert_eq!(payload.len(), 16);
    let served = u64::from_be_bytes(payload[0..8].try_into().unwrap());
    assert_eq!(served, server.stats().served());

    // Unknown tags get an error frame; the connection survives it.
    let (tag, payload) = round_trip(&mut stream, 200, &[1, 2, 3]);
    assert_eq!(tag, tags::RESP_ERROR);
    assert!(String::from_utf8_lossy(&payload).contains("unknown request tag"));
    assert_eq!(server.stats().error_responses(), 1);
    let (tag, _) = round_trip(&mut stream, tags::REQ_TELEMETRY, &[]);
    assert_eq!(tag, tags::RESP_TELEMETRY);

    server.shutdown();
}

/// Several frames written back-to-back in one burst are all answered, in
/// order — the reactor's per-connection FIFO guarantee.
#[test]
fn pipelined_frames_answered_in_order() {
    let server = CloudServer::spawn(2).unwrap();
    let mut stream = connect(server.addr());
    let trips = [
        TripRequest::us25_at(0.0),
        TripRequest::us25_at(60.0),
        TripRequest::us25_at(0.0),
    ];
    let mut burst = Vec::new();
    for t in &trips {
        burst.extend_from_slice(&frame(tags::REQ_TRIP, &t.encode()));
    }
    burst.extend_from_slice(&frame(tags::REQ_STATS, &[]));
    stream.write_all(&burst).unwrap();

    let mut profiles = Vec::new();
    for _ in 0..3 {
        let (tag, mut payload) = read_frame(&mut stream).unwrap().expect("open");
        assert_eq!(tag, tags::RESP_PROFILE);
        profiles.push(decode_profile(&mut payload).unwrap());
    }
    assert_eq!(profiles[0], profiles[2], "same trip, same plan");
    assert_ne!(
        profiles[0], profiles[1],
        "different departure, different plan"
    );
    let (tag, payload) = read_frame(&mut stream).unwrap().expect("open");
    assert_eq!(tag, tags::RESP_STATS);
    // The stats frame was answered after all three plans.
    let served = u64::from_be_bytes(payload[0..8].try_into().unwrap());
    assert_eq!(served, 3);
    server.shutdown();
}

/// Shutting down with clients still connected shears them off cleanly:
/// they observe EOF, and the server's teardown joins without deadlock.
#[test]
fn shutdown_sheds_live_connections() {
    let server = CloudServer::spawn(1).unwrap();
    let mut stream = connect(server.addr());
    // Prove the connection is live first.
    let (tag, _) = round_trip(&mut stream, tags::REQ_STATS, &[]);
    assert_eq!(tag, tags::RESP_STATS);
    server.shutdown();
    assert!(
        read_frame(&mut stream).unwrap().is_none(),
        "client must see EOF after shutdown"
    );
}
