//! Property-based tests for the vehicular-cloud wire format.

use bytes::Bytes;
use proptest::prelude::*;
use velopt_cloud::protocol::{read_frame, write_frame, TripRequest};
use velopt_common::units::{Seconds, VehiclesPerHour};
use velopt_queue::QueueParams;
use velopt_road::CorridorTemplate;

proptest! {
    /// Requests over arbitrary generated corridors round-trip losslessly.
    #[test]
    fn trip_request_round_trip(
        seed in any::<u64>(),
        departure in 0.0f64..600.0,
        rate in 10.0f64..1500.0,
        queue_aware in any::<bool>(),
    ) {
        let road = CorridorTemplate::default().generate(seed).unwrap();
        let rates = vec![VehiclesPerHour::new(rate); road.traffic_lights().len()];
        let req = TripRequest {
            road,
            departure: Seconds::new(departure),
            rates,
            queue: QueueParams::us25_probe(),
            queue_aware,
        };
        let mut bytes = req.encode();
        let back = TripRequest::decode(&mut bytes).unwrap();
        prop_assert_eq!(back, req);
        prop_assert!(bytes.is_empty());
    }

    /// Arbitrary frames round-trip through the stream helpers.
    #[test]
    fn frame_round_trip(tag in any::<u8>(), payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (t, p) = read_frame(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(t, tag);
        prop_assert_eq!(&p[..], &payload[..]);
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// Garbage bytes never panic the request decoder (errors are fine).
    #[test]
    fn decoder_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut bytes = Bytes::from(garbage);
        let _ = TripRequest::decode(&mut bytes);
    }

    /// Truncating a valid request at any point yields an error, not a panic
    /// or a silently-wrong value.
    #[test]
    fn truncation_is_detected(cut_fraction in 0.01f64..0.99) {
        let req = TripRequest::us25_at(30.0);
        let encoded = req.encode();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < encoded.len());
        let mut truncated = encoded.slice(0..cut);
        prop_assert!(TripRequest::decode(&mut truncated).is_err());
    }
}
