//! Shared parameters of the queue models.

use serde::{Deserialize, Serialize};
use velopt_common::units::{
    KilometersPerHour, Meters, MetersPerSecond, MetersPerSecondSq, Seconds, VehiclesPerHour,
};
use velopt_common::{Error, Result};

/// Parameters of a signalized approach, as used by Eq. 4–6.
///
/// # Examples
///
/// ```
/// use velopt_queue::QueueParams;
///
/// let p = QueueParams::us25_probe();
/// assert_eq!(p.arrival_rate.value(), 153.0);
/// assert_eq!(p.spacing.value(), 8.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueParams {
    /// Vehicle arrival rate `V_in` at the stop line.
    pub arrival_rate: VehiclesPerHour,
    /// Average intra-queue inter-vehicle spacing `d̄` (assumed constant,
    /// following \[14\]).
    pub spacing: Meters,
    /// Fraction `γ` of queued vehicles that go straight through.
    pub straight_ratio: f64,
    /// Minimum speed limit `v_min` the discharging queue accelerates to.
    pub v_min: MetersPerSecond,
    /// Maximum comfortable acceleration `a_max`.
    pub a_max: MetersPerSecondSq,
    /// Red period `t_red` of the cycle (the cycle starts red).
    pub red: Seconds,
    /// Green period `t_green` of the cycle.
    pub green: Seconds,
}

impl QueueParams {
    /// The paper's probe measurement at the second US-25 light (§III-B-2):
    /// `d̄ = 8.5 m`, `γ = 76.36 %`, `V_in = 153 veh/h`, `t_red = t_green =
    /// 30 s`, with `v_min = 40 km/h` and `a_max = 2.5 m/s²` from the road
    /// and comfort settings.
    pub fn us25_probe() -> Self {
        Self {
            arrival_rate: VehiclesPerHour::new(153.0),
            spacing: Meters::new(8.5),
            straight_ratio: 0.7636,
            v_min: KilometersPerHour::new(40.0).to_meters_per_second(),
            a_max: MetersPerSecondSq::new(2.5),
            red: Seconds::new(30.0),
            green: Seconds::new(30.0),
        }
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any rate, spacing, speed,
    /// acceleration or period is non-positive, or `γ` is outside `(0, 1]`.
    pub fn validated(self) -> Result<Self> {
        if self.arrival_rate.value() < 0.0 {
            return Err(Error::invalid_input("arrival rate must be non-negative"));
        }
        if self.spacing.value() <= 0.0 {
            return Err(Error::invalid_input("spacing must be positive"));
        }
        if !(self.straight_ratio > 0.0 && self.straight_ratio <= 1.0) {
            return Err(Error::invalid_input("straight ratio must be in (0, 1]"));
        }
        if self.v_min.value() <= 0.0 || self.a_max.value() <= 0.0 {
            return Err(Error::invalid_input(
                "v_min and a_max must be strictly positive",
            ));
        }
        if self.red.value() <= 0.0 || self.green.value() <= 0.0 {
            return Err(Error::invalid_input("signal periods must be positive"));
        }
        Ok(self)
    }

    /// Arrival rate in vehicles per second.
    pub fn lambda(&self) -> f64 {
        self.arrival_rate.per_second()
    }

    /// Full cycle duration.
    pub fn cycle(&self) -> Seconds {
        self.red + self.green
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_preset_is_valid() {
        assert!(QueueParams::us25_probe().validated().is_ok());
        let p = QueueParams::us25_probe();
        assert!((p.lambda() - 153.0 / 3600.0).abs() < 1e-12);
        assert_eq!(p.cycle(), Seconds::new(60.0));
    }

    #[test]
    fn validation_catches_each_field() {
        let good = QueueParams::us25_probe();
        let cases = [
            QueueParams {
                arrival_rate: VehiclesPerHour::new(-1.0),
                ..good
            },
            QueueParams {
                spacing: Meters::ZERO,
                ..good
            },
            QueueParams {
                straight_ratio: 0.0,
                ..good
            },
            QueueParams {
                straight_ratio: 1.5,
                ..good
            },
            QueueParams {
                v_min: MetersPerSecond::ZERO,
                ..good
            },
            QueueParams {
                a_max: MetersPerSecondSq::new(-2.0),
                ..good
            },
            QueueParams {
                red: Seconds::ZERO,
                ..good
            },
            QueueParams {
                green: Seconds::new(-1.0),
                ..good
            },
        ];
        for bad in cases {
            assert!(bad.validated().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn zero_arrivals_are_allowed() {
        let p = QueueParams {
            arrival_rate: VehiclesPerHour::ZERO,
            ..QueueParams::us25_probe()
        };
        assert!(p.validated().is_ok());
    }
}
