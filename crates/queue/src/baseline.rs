//! The baseline queue model of \[9\] used for the Fig. 5 comparison.
//!
//! Kang's dissertation model assumes a discharging vehicle reaches the
//! minimum speed limit *immediately* when the light turns green, so the
//! leaving rate is the constant `V_out = v_min / d̄` for as long as a queue
//! remains (no acceleration ramp, no straight-through ratio). The paper
//! shows this model under-estimates the queue and clears it too early
//! (Fig. 5b).

use crate::params::QueueParams;
use serde::{Deserialize, Serialize};
use velopt_common::units::{Seconds, VehiclesPerHour};
use velopt_common::{Error, Result, TimeSeries};

/// The instant-discharge baseline queue model.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::Seconds;
/// use velopt_queue::{BaselineQueueModel, QueueModel, QueueParams};
///
/// let ours = QueueModel::new(QueueParams::us25_probe())?;
/// let baseline = BaselineQueueModel::new(QueueParams::us25_probe())?;
/// // The baseline clears the queue earlier because it skips the
/// // acceleration ramp (the Fig. 5b discrepancy).
/// let t_ours = ours.clear_time().unwrap();
/// let t_base = baseline.clear_time().unwrap();
/// assert!(t_base < t_ours);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineQueueModel {
    params: QueueParams,
}

impl BaselineQueueModel {
    /// Creates the baseline model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the parameters fail validation.
    pub fn new(params: QueueParams) -> Result<Self> {
        Ok(Self {
            params: params.validated()?,
        })
    }

    /// The approach parameters.
    pub fn params(&self) -> &QueueParams {
        &self.params
    }

    /// Constant discharge capacity `v_min / d̄` in vehicles per second.
    pub fn capacity_per_second(&self) -> f64 {
        self.params.v_min.value() / self.params.spacing.value()
    }

    /// Queue length in vehicles at cycle-relative `t` for an initially-empty
    /// cycle.
    pub fn queue_vehicles(&self, t: Seconds) -> f64 {
        let lambda = self.params.lambda();
        let arrived = lambda * t.value().max(0.0);
        if t <= self.params.red {
            return arrived;
        }
        let tau = (t - self.params.red).value();
        (arrived - self.capacity_per_second() * tau).max(0.0)
    }

    /// Leaving rate at cycle-relative `t`: the constant `v_min/d̄` while a
    /// queue remains, then the arrival rate.
    pub fn leaving_rate(&self, t: Seconds) -> VehiclesPerHour {
        if t <= self.params.red {
            VehiclesPerHour::ZERO
        } else if self.queue_vehicles(t) > 0.0 {
            VehiclesPerHour::from_per_second(self.capacity_per_second())
        } else {
            self.params.arrival_rate
        }
    }

    /// Cycle-relative instant at which the queue clears, or `None` if it
    /// cannot within the green.
    pub fn clear_time(&self) -> Option<Seconds> {
        let lambda = self.params.lambda();
        let red = self.params.red.value();
        let c = self.capacity_per_second();
        if lambda * red <= 0.0 {
            return Some(self.params.red);
        }
        if c <= lambda {
            return None;
        }
        let tau = lambda * red / (c - lambda);
        if tau > self.params.green.value() {
            None
        } else {
            Some(Seconds::new(red + tau))
        }
    }

    /// Queue length sampled every `dt` over one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `dt` is non-positive.
    pub fn queue_series(&self, dt: Seconds) -> Result<TimeSeries> {
        if dt.value() <= 0.0 {
            return Err(Error::invalid_input("sample step must be positive"));
        }
        let n = (self.params.cycle().value() / dt.value()).round() as usize;
        TimeSeries::sample_fn(Seconds::ZERO, dt, n, |t| self.queue_vehicles(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> BaselineQueueModel {
        BaselineQueueModel::new(QueueParams::us25_probe()).unwrap()
    }

    #[test]
    fn red_phase_matches_our_model() {
        let b = baseline();
        let ours = crate::QueueModel::new(QueueParams::us25_probe()).unwrap();
        for t in [0.0, 15.0, 30.0] {
            assert!(
                (b.queue_vehicles(Seconds::new(t)) - ours.queue_vehicles(Seconds::new(t))).abs()
                    < 1e-12,
                "models agree during red"
            );
        }
    }

    #[test]
    fn discharge_is_instant_capacity() {
        let b = baseline();
        let r = b.leaving_rate(Seconds::new(30.01));
        assert!((r.per_second() - (40.0 / 3.6) / 8.5).abs() < 1e-9);
    }

    #[test]
    fn baseline_underestimates_queue_during_discharge() {
        // The Fig. 5b claim: skipping the ramp drains the modeled queue
        // faster than the VM-aware model.
        let b = baseline();
        let ours = crate::QueueModel::new(QueueParams::us25_probe()).unwrap();
        let t = Seconds::new(31.0);
        assert!(b.queue_vehicles(t) < ours.queue_vehicles(t));
    }

    #[test]
    fn clear_time_linear_solution() {
        let b = baseline();
        let clear = b.clear_time().unwrap();
        // At the clear instant the queue is zero.
        assert!(b.queue_vehicles(clear).abs() < 1e-9);
        assert!(b.queue_vehicles(clear - Seconds::new(0.1)) > 0.0);
    }

    #[test]
    fn oversaturation_detected() {
        let b = BaselineQueueModel::new(QueueParams {
            arrival_rate: VehiclesPerHour::from_per_second(2.0),
            ..QueueParams::us25_probe()
        })
        .unwrap();
        assert_eq!(b.clear_time(), None);
    }

    #[test]
    fn queue_series_has_cycle_length() {
        let b = baseline();
        let s = b.queue_series(Seconds::new(0.5)).unwrap();
        assert_eq!(s.len(), 121);
        assert!(b.queue_series(Seconds::ZERO).is_err());
    }
}
