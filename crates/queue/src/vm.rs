//! The vehicle-movement (VM) model: queue-discharge kinematics (Eq. 4).

use crate::params::QueueParams;
use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Seconds};
use velopt_common::{Error, Result};

/// Discharge kinematics of a queue released by a green light.
///
/// From the start of green the discharge front accelerates from rest at
/// `a_max` until it reaches `v_min`, then holds `v_min` (Eq. 4 cases ii and
/// iii). Driver response delay is explicitly out of scope in the paper.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{MetersPerSecond, MetersPerSecondSq, Seconds};
/// use velopt_queue::VmModel;
///
/// let vm = VmModel::new(MetersPerSecond::new(10.0), MetersPerSecondSq::new(2.5))?;
/// assert_eq!(vm.ramp_duration(), Seconds::new(4.0));
/// assert_eq!(vm.discharge_speed(Seconds::new(2.0)), MetersPerSecond::new(5.0));
/// assert_eq!(vm.discharge_speed(Seconds::new(100.0)), MetersPerSecond::new(10.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmModel {
    v_min: MetersPerSecond,
    a_max: MetersPerSecondSq,
}

impl VmModel {
    /// Creates a VM model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] unless both `v_min` and `a_max` are
    /// strictly positive.
    pub fn new(v_min: MetersPerSecond, a_max: MetersPerSecondSq) -> Result<Self> {
        if v_min.value() <= 0.0 || a_max.value() <= 0.0 {
            return Err(Error::invalid_input(
                "v_min and a_max must be strictly positive",
            ));
        }
        Ok(Self { v_min, a_max })
    }

    /// Builds the VM model from approach parameters.
    pub fn from_params(params: &QueueParams) -> Result<Self> {
        Self::new(params.v_min, params.a_max)
    }

    /// The target discharge speed `v_min`.
    pub fn v_min(&self) -> MetersPerSecond {
        self.v_min
    }

    /// The discharge acceleration `a_max`.
    pub fn a_max(&self) -> MetersPerSecondSq {
        self.a_max
    }

    /// Time to accelerate from rest to `v_min` (`v_min / a_max`; the paper's
    /// `t₁` is this plus `t_red`).
    pub fn ramp_duration(&self) -> Seconds {
        self.v_min / self.a_max
    }

    /// Discharge-front speed `τ` seconds after the light turned green
    /// (Eq. 4 cases ii–iii). Negative `τ` (still red) gives zero.
    pub fn discharge_speed(&self, tau: Seconds) -> MetersPerSecond {
        if tau.value() <= 0.0 {
            MetersPerSecond::ZERO
        } else if tau < self.ramp_duration() {
            self.a_max * tau
        } else {
            self.v_min
        }
    }

    /// Distance the discharge front has travelled `τ` seconds into green:
    /// `a_max·τ²/2` during the ramp, then linear at `v_min`.
    pub fn discharge_distance(&self, tau: Seconds) -> Meters {
        if tau.value() <= 0.0 {
            return Meters::ZERO;
        }
        let ramp = self.ramp_duration();
        if tau <= ramp {
            Meters::new(0.5 * self.a_max.value() * tau.value() * tau.value())
        } else {
            let ramp_dist = 0.5 * self.v_min.value() * ramp.value();
            Meters::new(ramp_dist + self.v_min.value() * (tau - ramp).value())
        }
    }

    /// Inverse of [`discharge_distance`](Self::discharge_distance): the time
    /// into green at which the front has covered `dist`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for a negative distance.
    pub fn time_to_cover(&self, dist: Meters) -> Result<Seconds> {
        if dist.value() < 0.0 {
            return Err(Error::invalid_input("distance must be non-negative"));
        }
        let ramp = self.ramp_duration();
        let ramp_dist = 0.5 * self.v_min.value() * ramp.value();
        if dist.value() <= ramp_dist {
            Ok(Seconds::new(
                (2.0 * dist.value() / self.a_max.value()).sqrt(),
            ))
        } else {
            Ok(ramp + Seconds::new((dist.value() - ramp_dist) / self.v_min.value()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> VmModel {
        VmModel::new(MetersPerSecond::new(11.0), MetersPerSecondSq::new(2.5)).unwrap()
    }

    #[test]
    fn rejects_nonpositive_inputs() {
        assert!(VmModel::new(MetersPerSecond::ZERO, MetersPerSecondSq::new(1.0)).is_err());
        assert!(VmModel::new(MetersPerSecond::new(1.0), MetersPerSecondSq::ZERO).is_err());
    }

    #[test]
    fn speed_profile_is_ramp_then_plateau() {
        let vm = vm();
        assert_eq!(
            vm.discharge_speed(Seconds::new(-5.0)),
            MetersPerSecond::ZERO
        );
        assert_eq!(vm.discharge_speed(Seconds::ZERO), MetersPerSecond::ZERO);
        assert_eq!(
            vm.discharge_speed(Seconds::new(2.0)),
            MetersPerSecond::new(5.0)
        );
        assert_eq!(
            vm.discharge_speed(Seconds::new(4.4)),
            MetersPerSecond::new(11.0)
        );
        assert_eq!(
            vm.discharge_speed(Seconds::new(100.0)),
            MetersPerSecond::new(11.0)
        );
    }

    #[test]
    fn distance_matches_closed_forms() {
        let vm = vm();
        // During ramp: ½·a·τ².
        assert!((vm.discharge_distance(Seconds::new(2.0)).value() - 5.0).abs() < 1e-12);
        // Ramp covers v²/(2a) = 121/5 = 24.2 m in 4.4 s; then +11 m/s.
        let after = vm.discharge_distance(Seconds::new(6.4));
        assert!((after.value() - (24.2 + 2.0 * 11.0)).abs() < 1e-9);
        assert_eq!(vm.discharge_distance(Seconds::new(-1.0)), Meters::ZERO);
    }

    #[test]
    fn time_to_cover_inverts_distance() {
        let vm = vm();
        for tau in [0.0, 1.0, 3.0, 4.4, 7.0, 20.0] {
            let d = vm.discharge_distance(Seconds::new(tau));
            let back = vm.time_to_cover(d).unwrap();
            assert!(
                (back.value() - tau).abs() < 1e-9,
                "tau {tau} -> d {d} -> {back}"
            );
        }
        assert!(vm.time_to_cover(Meters::new(-1.0)).is_err());
    }

    #[test]
    fn from_params_uses_v_min_and_a_max() {
        let p = crate::QueueParams::us25_probe();
        let vm = VmModel::from_params(&p).unwrap();
        assert_eq!(vm.v_min(), p.v_min);
        assert_eq!(vm.a_max(), p.a_max);
        // Paper's t₁ - t_red = v_min/a_max ≈ 4.44 s for 40 km/h at 2.5 m/s².
        assert!((vm.ramp_duration().value() - 11.111 / 2.5).abs() < 1e-2);
    }
}
