//! The queue-length (QL) model (Eq. 6) and the queue-free windows `T_q`.

use crate::params::QueueParams;
use crate::vm::VmModel;
use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, Seconds, VehiclesPerHour};
use velopt_common::{Error, Result, TimeSeries};
use velopt_road::{Phase, TrafficLight};

/// A half-open time interval `[start, end)` in absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Window start (inclusive).
    pub start: Seconds,
    /// Window end (exclusive).
    pub end: Seconds,
}

impl TimeWindow {
    /// Whether `t` lies inside the window.
    pub fn contains(&self, t: Seconds) -> bool {
        self.start <= t && t < self.end
    }

    /// Window duration.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// One sample of the queue state over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Absolute time of the sample.
    pub time: Seconds,
    /// Queue length in vehicles.
    pub vehicles: f64,
    /// Instantaneous leaving rate.
    pub leaving_rate: VehiclesPerHour,
}

/// The paper's queue-length model: arrivals at `V_in` build a queue through
/// red; from the start of green the VM-model discharge front releases it
/// (Eq. 6). All single-cycle queries use cycle-relative time `t ∈ [0,
/// red+green)` with the red phase first, matching Eq. 6's convention.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::Seconds;
/// use velopt_queue::{QueueModel, QueueParams};
///
/// let model = QueueModel::new(QueueParams::us25_probe())?;
/// let at_green_start = model.queue_vehicles(Seconds::new(30.0));
/// // 153 veh/h for 30 s ≈ 1.275 vehicles.
/// assert!((at_green_start - 1.275).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueModel {
    params: QueueParams,
    vm: VmModel,
}

impl QueueModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the parameters fail validation.
    pub fn new(params: QueueParams) -> Result<Self> {
        let params = params.validated()?;
        let vm = VmModel::from_params(&params)?;
        Ok(Self { params, vm })
    }

    /// The approach parameters.
    pub fn params(&self) -> &QueueParams {
        &self.params
    }

    /// The underlying VM model.
    pub fn vm(&self) -> &VmModel {
        &self.vm
    }

    /// Queue-discharge capacity `v_min / (d̄·γ)` in vehicles per second —
    /// the saturation value of Eq. 5.
    pub fn capacity_per_second(&self) -> f64 {
        self.params.v_min.value() / (self.params.spacing.value() * self.params.straight_ratio)
    }

    /// Vehicles discharged `τ` seconds into green (the VM front's travel
    /// distance divided by the effective spacing `d̄·γ`).
    fn discharged_vehicles(&self, tau: Seconds) -> f64 {
        self.vm.discharge_distance(tau).value()
            / (self.params.spacing.value() * self.params.straight_ratio)
    }

    /// Queue length in vehicles at cycle-relative time `t`, starting the
    /// cycle with `initial` queued vehicles (Eq. 6 generalized with a
    /// carry-over term; Eq. 6 itself is the `initial = 0` case).
    pub fn queue_vehicles_with_initial(&self, t: Seconds, initial: f64) -> f64 {
        let lambda = self.params.lambda();
        let arrived = initial + lambda * t.value().max(0.0);
        if t <= self.params.red {
            return arrived;
        }
        let tau = t - self.params.red;
        (arrived - self.discharged_vehicles(tau)).max(0.0)
    }

    /// Queue length in vehicles at cycle-relative time `t` for a cycle that
    /// starts empty (Eq. 6).
    pub fn queue_vehicles(&self, t: Seconds) -> f64 {
        self.queue_vehicles_with_initial(t, 0.0)
    }

    /// Queue length expressed in meters of stacked vehicles.
    pub fn queue_meters(&self, t: Seconds) -> Meters {
        Meters::new(self.queue_vehicles(t) * self.params.spacing.value())
    }

    /// Cycle-relative instant `t̄` at which the queue first reaches zero,
    /// starting the cycle with `initial` vehicles, or `None` when the cycle
    /// is oversaturated (the queue outlives the green).
    pub fn clear_time_with_initial(&self, initial: f64) -> Option<Seconds> {
        let lambda = self.params.lambda();
        let red = self.params.red.value();
        let dg = self.params.spacing.value() * self.params.straight_ratio;
        let backlog0 = initial + lambda * red; // queue at the start of green
        if backlog0 <= 0.0 {
            return Some(self.params.red);
        }

        // Phase A — the discharge front is still ramping up:
        //   backlog0 + λ·τ = a·τ² / (2·d̄γ)
        let a = self.params.a_max.value();
        let k = a / (2.0 * dg);
        let disc = lambda * lambda + 4.0 * k * backlog0;
        let tau_a = (lambda + disc.sqrt()) / (2.0 * k);
        let ramp = self.vm.ramp_duration().value();
        let tau = if tau_a <= ramp {
            tau_a
        } else {
            // Phase B — the front cruises at v_min (capacity c = v_min/d̄γ):
            //   backlog0 + λ·τ = [ramp_dist + v_min·(τ − ramp)] / d̄γ
            let c = self.capacity_per_second();
            if c <= lambda {
                return None; // oversaturated: the queue can never drain
            }
            let ramp_veh = self.discharged_vehicles(Seconds::new(ramp));
            (backlog0 - ramp_veh + c * ramp) / (c - lambda)
        };
        if tau > self.params.green.value() {
            return None; // does not clear within this green
        }
        Some(Seconds::new(red + tau))
    }

    /// Cycle-relative clear instant `t̄` for an initially-empty cycle
    /// (the `L_q(t) = 0` root of Eq. 6).
    pub fn clear_time(&self) -> Option<Seconds> {
        self.clear_time_with_initial(0.0)
    }

    /// Residual queue carried into the next cycle.
    pub fn residual_after_cycle(&self, initial: f64) -> f64 {
        self.queue_vehicles_with_initial(self.params.cycle(), initial)
    }

    /// Instantaneous leaving rate at cycle-relative `t` (Eq. 5, saturating
    /// at the arrival rate once the queue is empty — the plateau of
    /// Fig. 5a).
    pub fn leaving_rate_with_initial(&self, t: Seconds, initial: f64) -> VehiclesPerHour {
        if t <= self.params.red {
            return VehiclesPerHour::ZERO;
        }
        let tau = t - self.params.red;
        if self.queue_vehicles_with_initial(t, initial) > 0.0 {
            let dg = self.params.spacing.value() * self.params.straight_ratio;
            VehiclesPerHour::from_per_second(self.vm.discharge_speed(tau).value() / dg)
        } else {
            self.params.arrival_rate
        }
    }

    /// Leaving rate for an initially-empty cycle.
    pub fn leaving_rate(&self, t: Seconds) -> VehiclesPerHour {
        self.leaving_rate_with_initial(t, 0.0)
    }

    /// Simulates the queue over `cycles` consecutive cycles with residual
    /// carry-over, sampling every `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `dt` is non-positive or `cycles`
    /// is zero.
    pub fn simulate(&self, cycles: usize, dt: Seconds) -> Result<Vec<QueueSample>> {
        if cycles == 0 {
            return Err(Error::invalid_input("need at least one cycle"));
        }
        if dt.value() <= 0.0 {
            return Err(Error::invalid_input("sample step must be positive"));
        }
        let cycle = self.params.cycle();
        let mut samples = Vec::new();
        let mut initial = 0.0;
        for k in 0..cycles {
            let cycle_start = cycle * k as f64;
            let n = (cycle.value() / dt.value()).round() as usize;
            for i in 0..n {
                let t_rel = dt * i as f64;
                samples.push(QueueSample {
                    time: cycle_start + t_rel,
                    vehicles: self.queue_vehicles_with_initial(t_rel, initial),
                    leaving_rate: self.leaving_rate_with_initial(t_rel, initial),
                });
            }
            initial = self.residual_after_cycle(initial);
        }
        Ok(samples)
    }

    /// Queue length as a [`TimeSeries`] (for plots and RMSE comparisons).
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`simulate`](Self::simulate).
    pub fn queue_series(&self, cycles: usize, dt: Seconds) -> Result<TimeSeries> {
        let samples = self.simulate(cycles, dt)?;
        TimeSeries::from_samples(
            Seconds::ZERO,
            dt,
            samples.iter().map(|s| s.vehicles).collect(),
        )
    }

    /// The queue-free green windows `T_q` (Eq. 11) of a specific traffic
    /// light over `[from, from + horizon)`.
    ///
    /// For each signal cycle the queue is empty from the clear instant `t̄`
    /// until the end of green; residual queues are carried across
    /// oversaturated cycles. The model's red/green periods must match the
    /// light's.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the light's timing differs from
    /// the model parameters or the horizon is non-positive.
    pub fn empty_windows(
        &self,
        light: &TrafficLight,
        from: Seconds,
        horizon: Seconds,
    ) -> Result<Vec<TimeWindow>> {
        if (light.red() - self.params.red).abs().value() > 1e-9
            || (light.green() - self.params.green).abs().value() > 1e-9
        {
            return Err(Error::invalid_input(
                "traffic light timing does not match queue model parameters",
            ));
        }
        if horizon.value() <= 0.0 {
            return Err(Error::invalid_input("horizon must be positive"));
        }
        let end = from + horizon;
        let mut windows = Vec::new();
        let mut cycle_start = light.cycle_start_at(from);
        let mut initial = 0.0;
        while cycle_start < end {
            let cycle_end = cycle_start + self.params.cycle();
            if let Some(clear_rel) = self.clear_time_with_initial(initial) {
                let w = TimeWindow {
                    start: (cycle_start + clear_rel).max(from),
                    end: cycle_end.min(end),
                };
                if w.start < w.end {
                    windows.push(w);
                }
            }
            initial = self.residual_after_cycle(initial);
            cycle_start = cycle_end;
        }
        Ok(windows)
    }

    /// Checks that the light would actually show green for the whole of each
    /// returned window (sanity invariant used by tests and debug builds).
    pub fn window_is_green(&self, light: &TrafficLight, window: &TimeWindow) -> bool {
        let mid = Seconds::new(0.5 * (window.start.value() + window.end.value()));
        light.phase_at(mid) == Phase::Green
            && light.phase_at(window.start + Seconds::new(1e-6)) == Phase::Green
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineQueueModel;
    use velopt_common::units::{MetersPerSecond, MetersPerSecondSq};

    fn model() -> QueueModel {
        QueueModel::new(QueueParams::us25_probe()).unwrap()
    }

    fn probe_light() -> TrafficLight {
        TrafficLight::new(
            Meters::new(3460.0),
            Seconds::new(30.0),
            Seconds::new(30.0),
            Seconds::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn queue_grows_linearly_through_red() {
        let m = model();
        let lambda = 153.0 / 3600.0;
        for t in [0.0, 10.0, 20.0, 30.0] {
            assert!((m.queue_vehicles(Seconds::new(t)) - lambda * t).abs() < 1e-12);
        }
    }

    #[test]
    fn queue_clears_during_green_and_stays_zero() {
        let m = model();
        let clear = m.clear_time().expect("probe cycle is undersaturated");
        assert!(clear > Seconds::new(30.0));
        assert!(clear < Seconds::new(60.0));
        // Just before the clear instant the queue is positive...
        assert!(m.queue_vehicles(clear - Seconds::new(0.5)) > 0.0);
        // ...at it the queue is (numerically) zero, and it stays zero.
        assert!(m.queue_vehicles(clear).abs() < 1e-9);
        assert!(m.queue_vehicles(clear + Seconds::new(5.0)) == 0.0);
    }

    #[test]
    fn clear_time_solves_eq6_root() {
        // The clear instant really is a root of the queue-length function.
        let m = model();
        let clear = m.clear_time().unwrap();
        let before = m.queue_vehicles(clear - Seconds::new(1e-3));
        assert!(before > 0.0 && before < 1e-3);
    }

    #[test]
    fn zero_arrivals_clear_at_green_start() {
        let m = QueueModel::new(QueueParams {
            arrival_rate: VehiclesPerHour::ZERO,
            ..QueueParams::us25_probe()
        })
        .unwrap();
        assert_eq!(m.clear_time(), Some(Seconds::new(30.0)));
        assert_eq!(m.queue_vehicles(Seconds::new(45.0)), 0.0);
    }

    #[test]
    fn oversaturated_cycle_never_clears() {
        // Capacity with v_min=11.11, d̄γ=6.49 is ~1.71 veh/s; push arrivals
        // above it.
        let m = QueueModel::new(QueueParams {
            arrival_rate: VehiclesPerHour::from_per_second(2.0),
            ..QueueParams::us25_probe()
        })
        .unwrap();
        assert_eq!(m.clear_time(), None);
        assert!(m.residual_after_cycle(0.0) > 0.0);
    }

    #[test]
    fn queue_that_cannot_clear_within_green_carries_residual() {
        // High-but-undersaturated arrivals with a very short green.
        let m = QueueModel::new(QueueParams {
            arrival_rate: VehiclesPerHour::new(1800.0),
            green: Seconds::new(2.0),
            ..QueueParams::us25_probe()
        })
        .unwrap();
        assert_eq!(m.clear_time(), None);
        let r1 = m.residual_after_cycle(0.0);
        let r2 = m.residual_after_cycle(r1);
        assert!(r2 > r1, "residual should compound: {r1} -> {r2}");
    }

    #[test]
    fn leaving_rate_is_zero_red_ramp_green_then_arrival_plateau() {
        let m = model();
        assert_eq!(m.leaving_rate(Seconds::new(10.0)), VehiclesPerHour::ZERO);
        // 1 s into green: v = 2.5 m/s, rate = v/(d̄γ).
        let r = m.leaving_rate(Seconds::new(31.0));
        let expected = 2.5 / (8.5 * 0.7636);
        assert!((r.per_second() - expected).abs() < 1e-9);
        // After the clear instant: plateau at V_in.
        let clear = m.clear_time().unwrap();
        assert_eq!(
            m.leaving_rate(clear + Seconds::new(1.0)),
            VehiclesPerHour::new(153.0)
        );
    }

    #[test]
    fn vm_model_reaches_saturation_slower_than_baseline_shape() {
        // The headline of Fig. 5a: with acceleration modeled, the leaving
        // rate needs longer to reach its saturation value.
        let m = model();
        let tau_sat_vm = m.vm().ramp_duration();
        assert!(tau_sat_vm.value() > 4.0, "ramp should take several seconds");
        // While the queue is still draining, the VM rate is a rising ramp:
        // the baseline would already be at full capacity here.
        let clear = m.clear_time().unwrap();
        let early = m.leaving_rate(Seconds::new(30.5));
        let late = m.leaving_rate(clear - Seconds::new(0.1));
        assert!(early < late, "rate ramps up during discharge");
        let base = BaselineQueueModel::new(QueueParams::us25_probe()).unwrap();
        assert!(early.per_second() < base.capacity_per_second());
    }

    #[test]
    fn simulate_carries_residual_and_samples_uniformly() {
        let m = model();
        let samples = m.simulate(3, Seconds::new(0.5)).unwrap();
        assert_eq!(samples.len(), 3 * 120);
        assert!((samples[1].time - samples[0].time).value() - 0.5 < 1e-12);
        // Undersaturated: each cycle starts from an empty queue.
        let cycle2_start = &samples[120];
        assert!(cycle2_start.vehicles < 1e-9);
        assert!(m.simulate(0, Seconds::new(0.5)).is_err());
        assert!(m.simulate(1, Seconds::ZERO).is_err());
    }

    #[test]
    fn queue_series_matches_simulation() {
        let m = model();
        let series = m.queue_series(2, Seconds::new(1.0)).unwrap();
        assert_eq!(series.len(), 120);
        assert!((series.samples()[30] - m.queue_vehicles(Seconds::new(30.0))).abs() < 1e-12);
    }

    #[test]
    fn empty_windows_are_green_and_after_clear() {
        let m = model();
        let light = probe_light();
        let windows = m
            .empty_windows(&light, Seconds::ZERO, Seconds::new(180.0))
            .unwrap();
        assert_eq!(windows.len(), 3);
        for w in &windows {
            assert!(m.window_is_green(&light, w), "window {w:?} must be green");
            assert!(w.duration().value() > 0.0);
        }
        // Each window ends exactly at the end of its green.
        assert_eq!(windows[0].end, Seconds::new(60.0));
        assert_eq!(windows[1].end, Seconds::new(120.0));
    }

    #[test]
    fn empty_windows_validate_inputs() {
        let m = model();
        let light = probe_light();
        assert!(m
            .empty_windows(&light, Seconds::ZERO, Seconds::ZERO)
            .is_err());
        let wrong = TrafficLight::new(
            Meters::ZERO,
            Seconds::new(25.0),
            Seconds::new(30.0),
            Seconds::ZERO,
        )
        .unwrap();
        assert!(m
            .empty_windows(&wrong, Seconds::ZERO, Seconds::new(60.0))
            .is_err());
    }

    #[test]
    fn oversaturated_approach_has_no_windows() {
        let m = QueueModel::new(QueueParams {
            arrival_rate: VehiclesPerHour::from_per_second(2.0),
            ..QueueParams::us25_probe()
        })
        .unwrap();
        let windows = m
            .empty_windows(&probe_light(), Seconds::ZERO, Seconds::new(300.0))
            .unwrap();
        assert!(windows.is_empty());
    }

    #[test]
    fn time_window_contains_and_duration() {
        let w = TimeWindow {
            start: Seconds::new(10.0),
            end: Seconds::new(20.0),
        };
        assert!(w.contains(Seconds::new(10.0)));
        assert!(w.contains(Seconds::new(19.999)));
        assert!(!w.contains(Seconds::new(20.0)));
        assert!(!w.contains(Seconds::new(5.0)));
        assert_eq!(w.duration(), Seconds::new(10.0));
    }

    #[test]
    fn capacity_formula() {
        let m = model();
        let expected = (40.0 / 3.6) / (8.5 * 0.7636);
        assert!((m.capacity_per_second() - expected).abs() < 1e-9);
        // Sanity relative to the VM speed model.
        let m2 = QueueModel::new(QueueParams {
            v_min: MetersPerSecond::new(10.0),
            a_max: MetersPerSecondSq::new(2.0),
            ..QueueParams::us25_probe()
        })
        .unwrap();
        assert!(m2.capacity_per_second() < m.capacity_per_second());
    }
}
