//! Vehicle-movement (VM), leaving-rate and queue-length (QL) models for
//! signalized intersections (paper §II-B-2/3, Eq. 4–6, Fig. 5).
//!
//! The chain of models:
//!
//! 1. **VM model** ([`VmModel`]) — when the light turns green, the queued
//!    vehicles accelerate from rest to the minimum speed limit `v_min` at
//!    the maximum comfortable acceleration `a_max`, then hold `v_min`
//!    through the intersection (Eq. 4). This yields the queue-discharge
//!    speed `v(t)` and the distance the discharge front has travelled.
//! 2. **Leaving rate** (Eq. 5) — `V_out(t) = v(t) / (d̄·γ)` where `d̄` is
//!    the average intra-queue spacing and `γ` the fraction of queued
//!    vehicles heading straight through. Once the queue has fully
//!    discharged, vehicles leave as they arrive, so the observable leaving
//!    rate saturates at the arrival rate `V_in` — this is the plateau both
//!    curves of Fig. 5(a) reach.
//! 3. **QL model** ([`QueueModel`]) — arrivals accumulate at `V_in` during
//!    red and keep arriving during green while the discharge front eats the
//!    queue (Eq. 6); the instant the queue hits zero is the earliest moment
//!    an optimized EV can glide through without braking. Multi-cycle
//!    evolution (with residual queues carried across cycles when a cycle is
//!    oversaturated) is provided by [`QueueModel::simulate`], and the
//!    queue-free green intervals `T_q` (Eq. 11) by
//!    [`QueueModel::empty_windows`].
//!
//! The **baseline QL model** of Kang's dissertation \[9\]
//! ([`BaselineQueueModel`]) assumes queued vehicles jump to `v_min`
//! instantly at the start of green (`V_out = v_min/d̄`), which is what the
//! paper compares against in Fig. 5.
//!
//! # Examples
//!
//! The paper's probe measurement at the second US-25 light (1 PM, Jun 20
//! 2016): `d̄ = 8.5 m`, `γ = 0.7636`, `V_in = 153 veh/h`, 30 s red + 30 s
//! green:
//!
//! ```
//! # fn main() -> velopt_common::Result<()> {
//! use velopt_queue::{QueueModel, QueueParams};
//! use velopt_common::units::Seconds;
//!
//! let model = QueueModel::new(QueueParams::us25_probe())?;
//! // The queue grows through the red phase...
//! assert!(model.queue_vehicles(Seconds::new(30.0)) > 0.0);
//! // ...and clears a few seconds into the green.
//! let clear = model.clear_time().expect("undersaturated cycle clears");
//! assert!(clear.value() > 30.0 && clear.value() < 45.0);
//! # Ok(())
//! # }
//! ```

mod baseline;
mod params;
mod ql;
mod vm;

pub use baseline::BaselineQueueModel;
pub use params::QueueParams;
pub use ql::{QueueModel, QueueSample, TimeWindow};
pub use vm::VmModel;
