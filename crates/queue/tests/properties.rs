//! Property-based tests for the queue-model invariants.

use proptest::prelude::*;
use velopt_common::units::{Meters, MetersPerSecond, MetersPerSecondSq, Seconds, VehiclesPerHour};
use velopt_queue::{BaselineQueueModel, QueueModel, QueueParams};
use velopt_road::TrafficLight;

fn arb_params() -> impl Strategy<Value = QueueParams> {
    (
        0.0f64..1500.0, // arrival veh/h
        4.0f64..15.0,   // spacing m
        0.2f64..1.0,    // gamma
        5.0f64..20.0,   // v_min m/s
        1.0f64..3.0,    // a_max
        10.0f64..90.0,  // red s
        10.0f64..90.0,  // green s
    )
        .prop_map(|(vin, d, g, vmin, amax, red, green)| QueueParams {
            arrival_rate: VehiclesPerHour::new(vin),
            spacing: Meters::new(d),
            straight_ratio: g,
            v_min: MetersPerSecond::new(vmin),
            a_max: MetersPerSecondSq::new(amax),
            red: Seconds::new(red),
            green: Seconds::new(green),
        })
}

proptest! {
    /// Queue length is never negative anywhere in the cycle.
    #[test]
    fn queue_never_negative(p in arb_params(), t in 0.0f64..200.0) {
        let m = QueueModel::new(p).unwrap();
        prop_assert!(m.queue_vehicles(Seconds::new(t)) >= 0.0);
        prop_assert!(m.queue_meters(Seconds::new(t)).value() >= 0.0);
    }

    /// The clear instant, when it exists, really zeroes the queue and lies
    /// inside the green phase.
    #[test]
    fn clear_time_is_consistent(p in arb_params()) {
        let m = QueueModel::new(p).unwrap();
        if let Some(clear) = m.clear_time() {
            prop_assert!(clear >= p.red);
            prop_assert!(clear <= p.cycle() + Seconds::new(1e-9));
            prop_assert!(m.queue_vehicles(clear) < 1e-6);
            // And the queue stays empty for the rest of the green.
            let later = clear + (p.cycle() - clear) * 0.5;
            prop_assert!(m.queue_vehicles(later) < 1e-6);
        } else {
            // No clear: the queue at the end of the cycle is positive.
            prop_assert!(m.queue_vehicles(p.cycle()) > 0.0);
        }
    }

    /// The queue is monotonically non-increasing during discharge once the
    /// front moves (sampled coarsely).
    #[test]
    fn queue_monotone_decreasing_in_green_when_undersaturated(p in arb_params()) {
        prop_assume!(p.arrival_rate.per_second() < p.v_min.value() / (p.spacing.value() * p.straight_ratio) * 0.8);
        let m = QueueModel::new(p).unwrap();
        // After the ramp finishes, queue decreases (or is zero).
        let ramp_end = p.red + (p.v_min / p.a_max);
        let mut prev = m.queue_vehicles(ramp_end);
        let step = (p.cycle() - ramp_end) * 0.1;
        if step.value() <= 0.0 { return Ok(()); }
        for i in 1..=10 {
            let t = ramp_end + step * i as f64;
            let cur = m.queue_vehicles(t);
            prop_assert!(cur <= prev + 1e-9);
            prev = cur;
        }
    }

    /// Our model's queue is always >= the baseline's during discharge
    /// (the baseline skips the acceleration ramp), and the two agree during
    /// red.
    #[test]
    fn baseline_lower_bounds_ours_when_gamma_is_one(p in arb_params(), t in 0.0f64..200.0) {
        // Use γ=1 so the only difference is the acceleration ramp.
        let p = QueueParams { straight_ratio: 1.0, ..p };
        let ours = QueueModel::new(p).unwrap();
        let base = BaselineQueueModel::new(p).unwrap();
        let t = Seconds::new(t);
        prop_assert!(base.queue_vehicles(t) <= ours.queue_vehicles(t) + 1e-9);
        if t <= p.red {
            prop_assert!((base.queue_vehicles(t) - ours.queue_vehicles(t)).abs() < 1e-9);
        }
    }

    /// Every T_q window lies strictly inside a green phase and the queue is
    /// empty at its start.
    #[test]
    fn empty_windows_are_sound(p in arb_params(), from in 0.0f64..300.0) {
        let m = QueueModel::new(p).unwrap();
        let light = TrafficLight::new(
            Meters::new(100.0), p.red, p.green, Seconds::ZERO).unwrap();
        let windows = m.empty_windows(
            &light, Seconds::new(from), Seconds::new(240.0)).unwrap();
        for w in &windows {
            prop_assert!(w.duration().value() > 0.0);
            prop_assert!(m.window_is_green(&light, w), "window {w:?}");
            prop_assert!(w.start >= Seconds::new(from));
        }
        // Windows are disjoint and ordered.
        for pair in windows.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    /// Leaving rate is bounded by the saturation capacity and is zero during
    /// red.
    #[test]
    fn leaving_rate_bounds(p in arb_params(), t in 0.0f64..200.0) {
        let m = QueueModel::new(p).unwrap();
        let r = m.leaving_rate(Seconds::new(t));
        prop_assert!(r.value() >= 0.0);
        let cap = VehiclesPerHour::from_per_second(m.capacity_per_second());
        prop_assert!(r.value() <= cap.value().max(p.arrival_rate.value()) + 1e-9);
        if t <= p.red.value() {
            prop_assert_eq!(r, VehiclesPerHour::ZERO);
        }
    }

    /// Residual carry-over is self-consistent: simulating two cycles equals
    /// composing residuals.
    #[test]
    fn residual_composition(p in arb_params()) {
        let m = QueueModel::new(p).unwrap();
        let r1 = m.residual_after_cycle(0.0);
        let direct = m.queue_vehicles_with_initial(p.cycle(), r1);
        let r2 = m.residual_after_cycle(r1);
        prop_assert!((direct - r2).abs() < 1e-9);
    }
}
