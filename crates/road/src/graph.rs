//! Directed road graph of junctions and arterial edges.
//!
//! The paper plans a velocity profile over one fixed corridor; the routing
//! layer (see `velopt-core::route`) chooses *which* corridors to drive. A
//! [`RoadGraph`] is a set of junction nodes connected by directed edges,
//! each carrying a full [`Road`] corridor (grades, speed zones, signals), so
//! the DP velocity optimizer can price any edge exactly. A seeded
//! [`NetworkTemplate`] generates grid-shaped arterial networks whose edges
//! are drawn from a small pool of corridor classes — deliberately so, since
//! routes sharing segment classes reuse memoized plans and transition
//! tables.

use crate::generator::CorridorTemplate;
use crate::segment::Road;
use serde::{Deserialize, Serialize};
use velopt_common::rng::SplitMix64;
use velopt_common::{Error, Result};

/// Identifies a junction in a [`RoadGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index into the graph's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a directed edge in a [`RoadGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's index into the graph's edge table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed arterial edge: a full corridor from one junction to another.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoadEdge {
    from: NodeId,
    to: NodeId,
    road: Road,
}

impl RoadEdge {
    /// Junction the edge leaves.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Junction the edge enters.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// The corridor driven along this edge.
    pub fn road(&self) -> &Road {
        &self.road
    }
}

/// A directed road graph: junctions plus corridor-carrying edges.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_road::{NodeId, Road, RoadGraph};
///
/// let mut g = RoadGraph::new(2)?;
/// let e = g.add_edge(NodeId(0), NodeId(1), Road::us25())?;
/// assert_eq!(g.out_edges(NodeId(0)), &[e]);
/// assert_eq!(g.edge(e).road().length(), Road::us25().length());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoadGraph {
    n_nodes: usize,
    edges: Vec<RoadEdge>,
    /// Out-adjacency: `out[node] = edge ids leaving node`, in insertion order.
    out: Vec<Vec<EdgeId>>,
}

impl RoadGraph {
    /// Creates an empty graph with `n_nodes` junctions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `n_nodes` is zero or exceeds
    /// `u32::MAX`.
    pub fn new(n_nodes: usize) -> Result<Self> {
        if n_nodes == 0 {
            return Err(Error::invalid_input("a road graph needs at least one node"));
        }
        if n_nodes > u32::MAX as usize {
            return Err(Error::invalid_input("node count exceeds u32 id space"));
        }
        Ok(Self {
            n_nodes,
            edges: Vec::new(),
            out: vec![Vec::new(); n_nodes],
        })
    }

    /// Adds a directed edge carrying `road` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if either endpoint is out of range or
    /// the edge is a self-loop (a corridor must connect distinct junctions).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, road: Road) -> Result<EdgeId> {
        if from.index() >= self.n_nodes || to.index() >= self.n_nodes {
            return Err(Error::invalid_input(format!(
                "edge endpoint out of range: {} -> {} with {} nodes",
                from.0, to.0, self.n_nodes
            )));
        }
        if from == to {
            return Err(Error::invalid_input("self-loop edges are not allowed"));
        }
        if self.edges.len() >= u32::MAX as usize {
            return Err(Error::invalid_input("edge count exceeds u32 id space"));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(RoadEdge { from, to, road });
        self.out[from.index()].push(id);
        Ok(id)
    }

    /// Number of junctions.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids come from this graph's
    /// [`RoadGraph::add_edge`], so a miss is a logic error).
    pub fn edge(&self, id: EdgeId) -> &RoadEdge {
        &self.edges[id.index()]
    }

    /// All edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Ids of the edges leaving `node`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes as u32).map(NodeId)
    }
}

/// Seeded generator for grid-shaped arterial networks.
///
/// Junctions form a `rows × cols` grid; every pair of grid-adjacent
/// junctions is connected by one directed edge in each direction. Edge
/// corridors are drawn from a pool of `corridor_pool` pre-generated roads so
/// that many edges share a corridor class — the sharing the router's plan
/// memo and transition-table reuse are built to exploit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkTemplate {
    /// Grid rows (≥ 1).
    pub rows: usize,
    /// Grid columns (≥ 1; `rows × cols ≥ 2`).
    pub cols: usize,
    /// Distribution the corridor pool is drawn from.
    pub corridor: CorridorTemplate,
    /// Number of distinct corridors in the pool (≥ 1).
    pub corridor_pool: usize,
}

impl Default for NetworkTemplate {
    fn default() -> Self {
        Self {
            rows: 3,
            cols: 3,
            corridor: CorridorTemplate::default(),
            corridor_pool: 4,
        }
    }
}

impl NetworkTemplate {
    /// Validates the template.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on a degenerate grid, an empty
    /// corridor pool, or an invalid corridor distribution.
    pub fn validated(self) -> Result<Self> {
        if self.rows == 0 || self.cols == 0 || self.rows * self.cols < 2 {
            return Err(Error::invalid_input(
                "network grid needs at least two junctions",
            ));
        }
        if self.corridor_pool == 0 {
            return Err(Error::invalid_input("corridor pool must be non-empty"));
        }
        self.corridor.validated()?;
        Ok(self)
    }

    /// The node id of the junction at `(row, col)`.
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        NodeId((row * self.cols + col) as u32)
    }

    /// Generates one network from the template with the given seed.
    ///
    /// Deterministic: the same seed yields a bit-identical graph regardless
    /// of call site or thread count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the template is invalid.
    pub fn generate(&self, seed: u64) -> Result<RoadGraph> {
        let t = self.validated()?;
        let mut rng = SplitMix64::new(seed);
        let pool: Vec<Road> = (0..t.corridor_pool)
            .map(|_| t.corridor.generate(rng.next_u64()))
            .collect::<Result<_>>()?;
        let mut graph = RoadGraph::new(t.rows * t.cols)?;
        let draw = |rng: &mut SplitMix64| pool[(rng.next_u64() as usize) % pool.len()].clone();
        for r in 0..t.rows {
            for c in 0..t.cols {
                let here = t.node_at(r, c);
                if c + 1 < t.cols {
                    let right = t.node_at(r, c + 1);
                    let road = draw(&mut rng);
                    graph.add_edge(here, right, road)?;
                    graph.add_edge(right, here, draw(&mut rng))?;
                }
                if r + 1 < t.rows {
                    let down = t.node_at(r + 1, c);
                    graph.add_edge(here, down, draw(&mut rng))?;
                    graph.add_edge(down, here, draw(&mut rng))?;
                }
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_validation() {
        assert!(RoadGraph::new(0).is_err());
        let mut g = RoadGraph::new(2).unwrap();
        assert!(g.add_edge(NodeId(0), NodeId(0), Road::us25()).is_err());
        assert!(g.add_edge(NodeId(0), NodeId(2), Road::us25()).is_err());
        assert!(g.add_edge(NodeId(2), NodeId(1), Road::us25()).is_err());
        assert!(g.add_edge(NodeId(0), NodeId(1), Road::us25()).is_ok());
    }

    #[test]
    fn adjacency_tracks_insertion_order() {
        let mut g = RoadGraph::new(3).unwrap();
        let a = g.add_edge(NodeId(0), NodeId(1), Road::us25()).unwrap();
        let b = g.add_edge(NodeId(0), NodeId(2), Road::us25()).unwrap();
        let c = g.add_edge(NodeId(1), NodeId(2), Road::us25()).unwrap();
        assert_eq!(g.out_edges(NodeId(0)), &[a, b]);
        assert_eq!(g.out_edges(NodeId(1)), &[c]);
        assert!(g.out_edges(NodeId(2)).is_empty());
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(b).to(), NodeId(2));
    }

    #[test]
    fn template_validation() {
        assert!(NetworkTemplate::default().validated().is_ok());
        assert!(NetworkTemplate {
            rows: 1,
            cols: 1,
            ..NetworkTemplate::default()
        }
        .validated()
        .is_err());
        assert!(NetworkTemplate {
            corridor_pool: 0,
            ..NetworkTemplate::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn grid_shape_and_edge_count() {
        let t = NetworkTemplate {
            rows: 3,
            cols: 4,
            ..NetworkTemplate::default()
        };
        let g = t.generate(11).unwrap();
        assert_eq!(g.node_count(), 12);
        // Each of the (rows-1)*cols vertical and rows*(cols-1) horizontal
        // adjacencies contributes two directed edges.
        assert_eq!(g.edge_count(), 2 * (2 * 4 + 3 * 3));
        // Interior node (1,1) has degree 4 out.
        assert_eq!(g.out_edges(t.node_at(1, 1)).len(), 4);
        // Corner (0,0) has degree 2 out.
        assert_eq!(g.out_edges(t.node_at(0, 0)).len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let t = NetworkTemplate::default();
        assert_eq!(t.generate(5).unwrap(), t.generate(5).unwrap());
        assert_ne!(t.generate(5).unwrap(), t.generate(6).unwrap());
    }

    #[test]
    fn edges_share_the_corridor_pool() {
        let t = NetworkTemplate {
            rows: 4,
            cols: 4,
            corridor_pool: 2,
            ..NetworkTemplate::default()
        };
        let g = t.generate(3).unwrap();
        let mut lengths: Vec<f64> = g
            .edges()
            .iter()
            .map(|e| e.road().length().value())
            .collect();
        lengths.sort_by(f64::total_cmp);
        lengths.dedup();
        assert!(
            lengths.len() <= 2,
            "expected ≤2 distinct corridors, got {}",
            lengths.len()
        );
    }
}
