//! The [`Road`] corridor type and its passive features.

use crate::light::TrafficLight;
use serde::{Deserialize, Serialize};
use velopt_common::interp::PiecewiseLinear;
use velopt_common::units::{KilometersPerHour, Meters, MetersPerSecond, Radians};
use velopt_common::{Error, Result};

/// A speed-limit zone `[start, end)` with the paper's two-sided bound
/// (`v_min(s_i) ≤ v(s_i) ≤ v_max(s_i)`, Eq. 7a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedZone {
    /// Zone start position (inclusive).
    pub start: Meters,
    /// Zone end position (exclusive).
    pub end: Meters,
    /// Minimum cruising speed expected in the zone.
    pub min: MetersPerSecond,
    /// Posted maximum speed.
    pub max: MetersPerSecond,
}

impl SpeedZone {
    /// Validates the zone geometry and limits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the interval is empty or the
    /// limits are inverted/negative.
    pub fn validated(self) -> Result<Self> {
        if self.start.value() < 0.0 || self.end <= self.start {
            return Err(Error::invalid_input("speed zone interval is empty"));
        }
        if self.min.value() < 0.0 || self.max < self.min {
            return Err(Error::invalid_input("speed zone limits inverted"));
        }
        Ok(self)
    }

    /// Whether `x` lies inside the zone.
    pub fn contains(&self, x: Meters) -> bool {
        self.start <= x && x < self.end
    }
}

/// A stop sign: the velocity at this point must be zero (Eq. 7c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopSign {
    /// Stop-line position.
    pub position: Meters,
}

/// A 1-D road corridor with speed zones, stop signs, traffic lights and a
/// grade profile.
///
/// Build with [`RoadBuilder`](crate::RoadBuilder); the canonical test
/// corridor is [`Road::us25`].
///
/// # Examples
///
/// ```
/// use velopt_common::units::Meters;
/// use velopt_road::Road;
///
/// let road = Road::us25();
/// assert_eq!(road.stop_signs()[0].position, Meters::new(490.0));
/// assert_eq!(road.traffic_lights().len(), 2);
/// let (min, max) = road.speed_limits_at(Meters::new(1000.0));
/// assert!(min.value() > 0.0 && max > min);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    pub(crate) length: Meters,
    pub(crate) default_min: MetersPerSecond,
    pub(crate) default_max: MetersPerSecond,
    pub(crate) zones: Vec<SpeedZone>,
    pub(crate) stop_signs: Vec<StopSign>,
    pub(crate) lights: Vec<TrafficLight>,
    /// Grade in percent as a function of distance.
    pub(crate) grade_percent: PiecewiseLinear,
}

impl Road {
    /// The paper's 4.2 km US-25 section: stop sign at 490 m, lights at
    /// 1800 m and 3460 m (30 s red / 30 s green each), flat grade, limits
    /// 40–70 km/h.
    ///
    /// The signal offsets (42 s and 22 s) are calibrated so that an
    /// unconstrained energy-optimal cruise departing at `t = 0` reaches each
    /// light right at the start of a green — the regime Fig. 6 illustrates:
    /// the queue-oblivious prior DP plans straight into the still-
    /// discharging queue, while the queue-aware DP delays to `T_q`.
    pub fn us25() -> Self {
        crate::RoadBuilder::new(Meters::new(4200.0))
            .default_limits(
                KilometersPerHour::new(40.0).to_meters_per_second(),
                KilometersPerHour::new(70.0).to_meters_per_second(),
            )
            .stop_sign(Meters::new(490.0))
            .traffic_light(
                Meters::new(1800.0),
                velopt_common::units::Seconds::new(30.0),
                velopt_common::units::Seconds::new(30.0),
                velopt_common::units::Seconds::new(42.0),
            )
            .traffic_light(
                Meters::new(3460.0),
                velopt_common::units::Seconds::new(30.0),
                velopt_common::units::Seconds::new(30.0),
                velopt_common::units::Seconds::new(22.0),
            )
            .build()
            .expect("us25 preset is valid")
    }

    /// Corridor length.
    pub fn length(&self) -> Meters {
        self.length
    }

    /// Stop signs ordered by position.
    pub fn stop_signs(&self) -> &[StopSign] {
        &self.stop_signs
    }

    /// Traffic lights ordered by position.
    pub fn traffic_lights(&self) -> &[TrafficLight] {
        &self.lights
    }

    /// Explicit speed zones (positions not covered fall back to the default
    /// limits).
    pub fn speed_zones(&self) -> &[SpeedZone] {
        &self.zones
    }

    /// `(v_min, v_max)` limits at position `x`.
    ///
    /// The minimum limit is *advisory* away from signals: the optimizer must
    /// still allow `v = 0` at stop signs and during queue build-up. The DP
    /// applies it only where the paper does (cruising bounds of Eq. 7a).
    pub fn speed_limits_at(&self, x: Meters) -> (MetersPerSecond, MetersPerSecond) {
        for z in &self.zones {
            if z.contains(x) {
                return (z.min, z.max);
            }
        }
        (self.default_min, self.default_max)
    }

    /// Road grade angle at position `x`.
    pub fn grade_at(&self, x: Meters) -> Radians {
        Radians::from_grade_percent(self.grade_percent.eval(x.value()))
    }

    /// The grade profile in percent as a piecewise-linear curve of distance
    /// (exposed so roads can be serialized over the vehicular-cloud wire).
    pub fn grade_percent_profile(&self) -> &PiecewiseLinear {
        &self.grade_percent
    }

    /// The `(min, max)` limits applying outside explicit speed zones.
    pub fn default_limits(&self) -> (MetersPerSecond, MetersPerSecond) {
        (self.default_min, self.default_max)
    }

    /// The smallest minimum speed limit over the corridor — the `v_min` used
    /// by the VM model for queue discharge (§II-B-2).
    pub fn min_speed_limit(&self) -> MetersPerSecond {
        self.zones
            .iter()
            .map(|z| z.min)
            .fold(self.default_min, MetersPerSecond::min)
    }

    /// The largest maximum speed limit over the corridor.
    pub fn max_speed_limit(&self) -> MetersPerSecond {
        self.zones
            .iter()
            .map(|z| z.max)
            .fold(self.default_max, MetersPerSecond::max)
    }

    /// Positions where the velocity is constrained to zero: the source, every
    /// stop sign, and the destination (Eq. 7c–7d exclude traffic lights,
    /// which are handled by the green-window penalty instead).
    pub fn mandatory_stops(&self) -> Vec<Meters> {
        let mut stops = vec![Meters::ZERO];
        stops.extend(self.stop_signs.iter().map(|s| s.position));
        stops.push(self.length);
        stops
    }

    /// Whether `x` is within the corridor.
    pub fn contains(&self, x: Meters) -> bool {
        x.value() >= 0.0 && x <= self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velopt_common::units::Seconds;

    #[test]
    fn us25_layout_matches_paper() {
        let road = Road::us25();
        assert_eq!(road.length(), Meters::new(4200.0));
        assert_eq!(road.stop_signs().len(), 1);
        assert_eq!(road.stop_signs()[0].position, Meters::new(490.0));
        let lights = road.traffic_lights();
        assert_eq!(lights.len(), 2);
        assert_eq!(lights[0].position(), Meters::new(1800.0));
        assert_eq!(lights[1].position(), Meters::new(3460.0));
        assert_eq!(lights[0].red(), Seconds::new(30.0));
        assert_eq!(lights[0].green(), Seconds::new(30.0));
    }

    #[test]
    fn us25_grade_is_flat() {
        let road = Road::us25();
        assert_eq!(road.grade_at(Meters::new(2000.0)), Radians::ZERO);
    }

    #[test]
    fn mandatory_stops_are_ordered_endpoints_and_signs() {
        let road = Road::us25();
        assert_eq!(
            road.mandatory_stops(),
            vec![Meters::ZERO, Meters::new(490.0), Meters::new(4200.0)]
        );
    }

    #[test]
    fn default_limits_apply_everywhere_without_zones() {
        let road = Road::us25();
        let (lo, hi) = road.speed_limits_at(Meters::new(100.0));
        assert!((lo.to_kilometers_per_hour().value() - 40.0).abs() < 1e-9);
        assert!((hi.to_kilometers_per_hour().value() - 70.0).abs() < 1e-9);
        assert_eq!(road.min_speed_limit(), lo);
        assert_eq!(road.max_speed_limit(), hi);
    }

    #[test]
    fn speed_zone_validation() {
        let ok = SpeedZone {
            start: Meters::ZERO,
            end: Meters::new(10.0),
            min: MetersPerSecond::new(5.0),
            max: MetersPerSecond::new(10.0),
        };
        assert!(ok.validated().is_ok());
        let empty = SpeedZone {
            end: Meters::ZERO,
            ..ok
        };
        assert!(empty.validated().is_err());
        let inverted = SpeedZone {
            min: MetersPerSecond::new(20.0),
            ..ok
        };
        assert!(inverted.validated().is_err());
    }

    #[test]
    fn contains_bounds() {
        let road = Road::us25();
        assert!(road.contains(Meters::ZERO));
        assert!(road.contains(Meters::new(4200.0)));
        assert!(!road.contains(Meters::new(4200.1)));
        assert!(!road.contains(Meters::new(-0.1)));
    }
}
