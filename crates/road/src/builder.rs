//! Builder for [`Road`] corridors.

use crate::light::TrafficLight;
use crate::segment::{Road, SpeedZone, StopSign};
use velopt_common::interp::PiecewiseLinear;
use velopt_common::units::{Meters, MetersPerSecond, Seconds};
use velopt_common::{Error, Result};

/// The most stop signs one corridor can carry (simulators track served
/// signs in a 64-bit per-vehicle bitmask).
pub const MAX_STOP_SIGNS: usize = 64;

/// Incrementally configures a [`Road`].
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{Meters, MetersPerSecond, Seconds};
/// use velopt_road::RoadBuilder;
///
/// let road = RoadBuilder::new(Meters::new(1000.0))
///     .default_limits(MetersPerSecond::new(8.0), MetersPerSecond::new(20.0))
///     .stop_sign(Meters::new(300.0))
///     .traffic_light(Meters::new(700.0), Seconds::new(25.0), Seconds::new(35.0), Seconds::ZERO)
///     .grade_knot(Meters::ZERO, 0.0)
///     .grade_knot(Meters::new(1000.0), 2.0)
///     .build()?;
/// assert_eq!(road.traffic_lights().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoadBuilder {
    length: Meters,
    default_min: MetersPerSecond,
    default_max: MetersPerSecond,
    zones: Vec<SpeedZone>,
    stop_signs: Vec<StopSign>,
    lights: Vec<(Meters, Seconds, Seconds, Seconds)>,
    grade_knots: Vec<(f64, f64)>,
}

impl RoadBuilder {
    /// Starts a builder for a corridor of the given length.
    pub fn new(length: Meters) -> Self {
        Self {
            length,
            default_min: MetersPerSecond::ZERO,
            default_max: MetersPerSecond::new(120.0 / 3.6),
            zones: Vec::new(),
            stop_signs: Vec::new(),
            lights: Vec::new(),
            grade_knots: Vec::new(),
        }
    }

    /// Sets the default `(min, max)` speed limits outside explicit zones.
    pub fn default_limits(&mut self, min: MetersPerSecond, max: MetersPerSecond) -> &mut Self {
        self.default_min = min;
        self.default_max = max;
        self
    }

    /// Adds an explicit speed zone.
    pub fn speed_zone(&mut self, zone: SpeedZone) -> &mut Self {
        self.zones.push(zone);
        self
    }

    /// Adds a stop sign.
    pub fn stop_sign(&mut self, position: Meters) -> &mut Self {
        self.stop_signs.push(StopSign { position });
        self
    }

    /// Adds a fixed-time traffic light.
    pub fn traffic_light(
        &mut self,
        position: Meters,
        red: Seconds,
        green: Seconds,
        offset: Seconds,
    ) -> &mut Self {
        self.lights.push((position, red, green, offset));
        self
    }

    /// Adds a grade knot: at `position` the road grade is `percent`
    /// (rise/run × 100). Knots must be added in increasing position order.
    pub fn grade_knot(&mut self, position: Meters, percent: f64) -> &mut Self {
        self.grade_knots.push((position.value(), percent));
        self
    }

    /// Validates and builds the road.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the length is non-positive, any
    /// feature lies outside the corridor, speed zones overlap, default
    /// limits are inverted, grade knots are not strictly increasing, or a
    /// grade knot lies outside `[0, length]`.
    pub fn build(&self) -> Result<Road> {
        if self.length.value() <= 0.0 {
            return Err(Error::invalid_input("road length must be positive"));
        }
        if self.default_min.value() < 0.0 || self.default_max < self.default_min {
            return Err(Error::invalid_input("default speed limits inverted"));
        }

        let mut zones = Vec::with_capacity(self.zones.len());
        for z in &self.zones {
            let z = z.validated()?;
            if z.end > self.length {
                return Err(Error::invalid_input("speed zone extends past the road end"));
            }
            zones.push(z);
        }
        zones.sort_by(|a, b| a.start.value().total_cmp(&b.start.value()));
        for w in zones.windows(2) {
            if w[1].start < w[0].end {
                return Err(Error::invalid_input("speed zones overlap"));
            }
        }

        let mut stop_signs = self.stop_signs.clone();
        // Simulators track served signs in a per-vehicle 64-bit mask indexed
        // by sign position order; more signs than bits would overflow it.
        if stop_signs.len() > MAX_STOP_SIGNS {
            return Err(Error::invalid_input(format!(
                "a corridor supports at most {MAX_STOP_SIGNS} stop signs, got {}",
                stop_signs.len()
            )));
        }
        stop_signs.sort_by(|a, b| a.position.value().total_cmp(&b.position.value()));
        for s in &stop_signs {
            if s.position.value() <= 0.0 || s.position >= self.length {
                return Err(Error::invalid_input(
                    "stop sign must lie strictly inside the corridor",
                ));
            }
        }

        let mut lights = Vec::with_capacity(self.lights.len());
        for &(pos, red, green, offset) in &self.lights {
            if pos.value() <= 0.0 || pos >= self.length {
                return Err(Error::invalid_input(
                    "traffic light must lie strictly inside the corridor",
                ));
            }
            lights.push(TrafficLight::new(pos, red, green, offset)?);
        }
        lights.sort_by(|a, b| a.position().value().total_cmp(&b.position().value()));

        // A knot computed as `length * i / n` can land an ulp past the
        // endpoint; tolerate rounding noise, reject genuine out-of-range
        // positions.
        let tol = 1e-9 * self.length.value().max(1.0);
        for &(x, _) in &self.grade_knots {
            if x < -tol || x > self.length.value() + tol {
                return Err(Error::invalid_input(format!(
                    "grade knot at {x} m lies outside the corridor [0, {}]",
                    self.length.value()
                )));
            }
        }
        let grade_percent = if self.grade_knots.is_empty() {
            PiecewiseLinear::constant(0.0)
        } else {
            PiecewiseLinear::new(self.grade_knots.clone())?
        };

        Ok(Road {
            length: self.length,
            default_min: self.default_min,
            default_max: self.default_max,
            zones,
            stop_signs,
            lights,
            grade_percent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_length() {
        assert!(RoadBuilder::new(Meters::ZERO).build().is_err());
    }

    #[test]
    fn rejects_features_outside_corridor() {
        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.stop_sign(Meters::new(150.0));
        assert!(b.build().is_err());

        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.traffic_light(
            Meters::new(100.0),
            Seconds::new(30.0),
            Seconds::new(30.0),
            Seconds::ZERO,
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_overlapping_zones() {
        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.speed_zone(SpeedZone {
            start: Meters::ZERO,
            end: Meters::new(60.0),
            min: MetersPerSecond::new(5.0),
            max: MetersPerSecond::new(15.0),
        });
        b.speed_zone(SpeedZone {
            start: Meters::new(50.0),
            end: Meters::new(100.0),
            min: MetersPerSecond::new(5.0),
            max: MetersPerSecond::new(15.0),
        });
        assert!(b.build().is_err());
    }

    #[test]
    fn sorts_features_by_position() {
        let road = RoadBuilder::new(Meters::new(1000.0))
            .stop_sign(Meters::new(800.0))
            .stop_sign(Meters::new(200.0))
            .traffic_light(
                Meters::new(900.0),
                Seconds::new(10.0),
                Seconds::new(10.0),
                Seconds::ZERO,
            )
            .traffic_light(
                Meters::new(300.0),
                Seconds::new(10.0),
                Seconds::new(10.0),
                Seconds::ZERO,
            )
            .build()
            .unwrap();
        assert_eq!(road.stop_signs()[0].position, Meters::new(200.0));
        assert_eq!(road.traffic_lights()[0].position(), Meters::new(300.0));
    }

    #[test]
    fn zone_limits_override_defaults() {
        let road = RoadBuilder::new(Meters::new(1000.0))
            .default_limits(MetersPerSecond::new(10.0), MetersPerSecond::new(20.0))
            .speed_zone(SpeedZone {
                start: Meters::new(100.0),
                end: Meters::new(200.0),
                min: MetersPerSecond::new(3.0),
                max: MetersPerSecond::new(8.0),
            })
            .build()
            .unwrap();
        assert_eq!(
            road.speed_limits_at(Meters::new(150.0)),
            (MetersPerSecond::new(3.0), MetersPerSecond::new(8.0))
        );
        assert_eq!(
            road.speed_limits_at(Meters::new(250.0)),
            (MetersPerSecond::new(10.0), MetersPerSecond::new(20.0))
        );
        assert_eq!(road.min_speed_limit(), MetersPerSecond::new(3.0));
        assert_eq!(road.max_speed_limit(), MetersPerSecond::new(20.0));
    }

    #[test]
    fn grade_profile_interpolates() {
        let road = RoadBuilder::new(Meters::new(1000.0))
            .grade_knot(Meters::ZERO, 0.0)
            .grade_knot(Meters::new(1000.0), 4.0)
            .build()
            .unwrap();
        let theta = road.grade_at(Meters::new(500.0));
        assert!((theta.value() - (0.02f64).atan()).abs() < 1e-12);
    }

    #[test]
    fn stop_sign_count_boundary() {
        // Exactly MAX_STOP_SIGNS is fine; one more is rejected with a clear
        // message (the simulator's served-sign bitmask is 64 bits wide).
        let mut b = RoadBuilder::new(Meters::new(10_000.0));
        for i in 0..MAX_STOP_SIGNS {
            b.stop_sign(Meters::new(10.0 + i as f64 * 100.0));
        }
        assert!(b.build().is_ok());
        b.stop_sign(Meters::new(9999.0));
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("64 stop signs"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_grade_knots_outside_corridor() {
        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.grade_knot(Meters::ZERO, 0.0);
        b.grade_knot(Meters::new(150.0), 2.0);
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("grade knot"), "unexpected error: {err}");

        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.grade_knot(Meters::new(-10.0), 1.0);
        b.grade_knot(Meters::new(100.0), 0.0);
        assert!(b.build().is_err());

        // Knots exactly at the endpoints are fine.
        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.grade_knot(Meters::ZERO, 0.0);
        b.grade_knot(Meters::new(100.0), 3.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_inverted_defaults() {
        let mut b = RoadBuilder::new(Meters::new(100.0));
        b.default_limits(MetersPerSecond::new(20.0), MetersPerSecond::new(10.0));
        assert!(b.build().is_err());
    }
}
