//! Fixed-cycle traffic lights.
//!
//! The paper models a signal cycle as a red period `[0, t_red)` followed by a
//! green period `[t_red, t_red + t_green)` (§II-B-2). An `offset` shifts the
//! cycle in absolute time so corridors with uncoordinated signals can be
//! expressed.

use serde::{Deserialize, Serialize};
use velopt_common::units::{Meters, Seconds};
use velopt_common::{Error, Result};

/// The state of a signal head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Vehicles must stop at the stop line.
    Red,
    /// Vehicles may proceed.
    Green,
}

impl Phase {
    /// Whether the phase allows vehicles through.
    pub fn is_green(self) -> bool {
        matches!(self, Phase::Green)
    }
}

/// A fixed-time traffic light at a position along the corridor.
///
/// The cycle begins with red: at absolute time `offset` the light turns red,
/// stays red for `red`, then green for `green`, then repeats.
///
/// # Examples
///
/// ```
/// # fn main() -> velopt_common::Result<()> {
/// use velopt_common::units::{Meters, Seconds};
/// use velopt_road::{Phase, TrafficLight};
///
/// let light = TrafficLight::new(
///     Meters::new(1800.0),
///     Seconds::new(30.0),
///     Seconds::new(30.0),
///     Seconds::ZERO,
/// )?;
/// assert_eq!(light.cycle(), Seconds::new(60.0));
/// assert_eq!(light.phase_at(Seconds::new(29.9)), Phase::Red);
/// assert_eq!(light.phase_at(Seconds::new(30.0)), Phase::Green);
/// assert_eq!(light.phase_at(Seconds::new(60.0)), Phase::Red);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficLight {
    position: Meters,
    red: Seconds,
    green: Seconds,
    offset: Seconds,
}

impl TrafficLight {
    /// Creates a light.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if either period is non-positive or
    /// the position is negative.
    pub fn new(position: Meters, red: Seconds, green: Seconds, offset: Seconds) -> Result<Self> {
        if red.value() <= 0.0 || green.value() <= 0.0 {
            return Err(Error::invalid_input("signal periods must be positive"));
        }
        if position.value() < 0.0 {
            return Err(Error::invalid_input("light position must be non-negative"));
        }
        Ok(Self {
            position,
            red,
            green,
            offset,
        })
    }

    /// Stop-line position along the corridor.
    pub fn position(&self) -> Meters {
        self.position
    }

    /// Red period `t_red`.
    pub fn red(&self) -> Seconds {
        self.red
    }

    /// Green period `t_green`.
    pub fn green(&self) -> Seconds {
        self.green
    }

    /// Cycle offset (time at which a red phase starts).
    pub fn offset(&self) -> Seconds {
        self.offset
    }

    /// Full cycle duration `t_red + t_green`.
    pub fn cycle(&self) -> Seconds {
        self.red + self.green
    }

    /// Time elapsed since the start of the current cycle, in `[0, cycle)`.
    pub fn time_in_cycle(&self, t: Seconds) -> Seconds {
        let c = self.cycle().value();
        let rel = (t - self.offset).value().rem_euclid(c);
        Seconds::new(rel)
    }

    /// Phase at absolute time `t`.
    pub fn phase_at(&self, t: Seconds) -> Phase {
        if self.time_in_cycle(t) < self.red {
            Phase::Red
        } else {
            Phase::Green
        }
    }

    /// Absolute time of the most recent cycle start at or before `t`.
    pub fn cycle_start_at(&self, t: Seconds) -> Seconds {
        t - self.time_in_cycle(t)
    }

    /// The next instant at or after `t` when the light is (or turns) green.
    pub fn next_green_start(&self, t: Seconds) -> Seconds {
        match self.phase_at(t) {
            Phase::Green => t,
            Phase::Red => self.cycle_start_at(t) + self.red,
        }
    }

    /// Green intervals `[start, end)` intersecting `[from, from + horizon)`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> velopt_common::Result<()> {
    /// use velopt_common::units::{Meters, Seconds};
    /// use velopt_road::TrafficLight;
    ///
    /// let light = TrafficLight::new(
    ///     Meters::ZERO, Seconds::new(30.0), Seconds::new(30.0), Seconds::ZERO)?;
    /// let windows = light.green_windows(Seconds::ZERO, Seconds::new(120.0));
    /// assert_eq!(windows, vec![
    ///     (Seconds::new(30.0), Seconds::new(60.0)),
    ///     (Seconds::new(90.0), Seconds::new(120.0)),
    /// ]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn green_windows(&self, from: Seconds, horizon: Seconds) -> Vec<(Seconds, Seconds)> {
        let mut windows = Vec::new();
        self.green_windows_into(from, horizon, &mut windows);
        windows
    }

    /// Like [`TrafficLight::green_windows`], but clears and fills a
    /// caller-owned buffer so steady-state replanning and router signature
    /// hashing stay allocation-free once the buffer has grown to capacity.
    pub fn green_windows_into(
        &self,
        from: Seconds,
        horizon: Seconds,
        windows: &mut Vec<(Seconds, Seconds)>,
    ) {
        windows.clear();
        let end = from + horizon;
        // Start scanning from the cycle containing `from`.
        let mut cycle_start = self.cycle_start_at(from);
        while cycle_start < end {
            let g0 = cycle_start + self.red;
            let g1 = cycle_start + self.cycle();
            let clipped = (g0.max(from), g1.min(end));
            if clipped.0 < clipped.1 {
                windows.push(clipped);
            }
            cycle_start += self.cycle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light(offset: f64) -> TrafficLight {
        TrafficLight::new(
            Meters::new(100.0),
            Seconds::new(30.0),
            Seconds::new(30.0),
            Seconds::new(offset),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(TrafficLight::new(
            Meters::ZERO,
            Seconds::ZERO,
            Seconds::new(1.0),
            Seconds::ZERO
        )
        .is_err());
        assert!(TrafficLight::new(
            Meters::ZERO,
            Seconds::new(1.0),
            Seconds::ZERO,
            Seconds::ZERO
        )
        .is_err());
        assert!(TrafficLight::new(
            Meters::new(-1.0),
            Seconds::new(1.0),
            Seconds::new(1.0),
            Seconds::ZERO
        )
        .is_err());
    }

    #[test]
    fn phase_boundaries() {
        let l = light(0.0);
        assert_eq!(l.phase_at(Seconds::ZERO), Phase::Red);
        assert_eq!(l.phase_at(Seconds::new(29.999)), Phase::Red);
        assert_eq!(l.phase_at(Seconds::new(30.0)), Phase::Green);
        assert_eq!(l.phase_at(Seconds::new(59.999)), Phase::Green);
        assert_eq!(l.phase_at(Seconds::new(60.0)), Phase::Red);
        assert!(l.phase_at(Seconds::new(45.0)).is_green());
    }

    #[test]
    fn offset_shifts_cycle() {
        let l = light(10.0);
        assert_eq!(l.phase_at(Seconds::new(5.0)), Phase::Green); // tail of previous cycle
        assert_eq!(l.phase_at(Seconds::new(10.0)), Phase::Red);
        assert_eq!(l.phase_at(Seconds::new(40.0)), Phase::Green);
    }

    #[test]
    fn negative_time_wraps() {
        let l = light(0.0);
        // t = -15 is inside the green of the "previous" cycle.
        assert_eq!(l.phase_at(Seconds::new(-15.0)), Phase::Green);
        assert_eq!(l.phase_at(Seconds::new(-45.0)), Phase::Red);
    }

    #[test]
    fn next_green_start() {
        let l = light(0.0);
        assert_eq!(l.next_green_start(Seconds::new(10.0)), Seconds::new(30.0));
        assert_eq!(l.next_green_start(Seconds::new(35.0)), Seconds::new(35.0));
        assert_eq!(l.next_green_start(Seconds::new(60.0)), Seconds::new(90.0));
    }

    #[test]
    fn green_windows_clip_to_horizon() {
        let l = light(0.0);
        let ws = l.green_windows(Seconds::new(45.0), Seconds::new(60.0));
        assert_eq!(
            ws,
            vec![
                (Seconds::new(45.0), Seconds::new(60.0)),
                (Seconds::new(90.0), Seconds::new(105.0)),
            ]
        );
    }

    #[test]
    fn green_windows_empty_horizon() {
        let l = light(0.0);
        assert!(l.green_windows(Seconds::ZERO, Seconds::ZERO).is_empty());
    }

    #[test]
    fn green_windows_into_reuses_dirty_buffer() {
        let l = light(0.0);
        let mut buf = vec![(Seconds::new(-1.0), Seconds::new(-2.0)); 7];
        l.green_windows_into(Seconds::new(45.0), Seconds::new(60.0), &mut buf);
        assert_eq!(buf, l.green_windows(Seconds::new(45.0), Seconds::new(60.0)));
        // An empty horizon clears the buffer instead of appending.
        l.green_windows_into(Seconds::ZERO, Seconds::ZERO, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn cycle_start_is_stable_within_cycle() {
        let l = light(7.0);
        let s1 = l.cycle_start_at(Seconds::new(20.0));
        let s2 = l.cycle_start_at(Seconds::new(60.0));
        assert_eq!(s1, Seconds::new(7.0));
        assert_eq!(s2, s1);
        assert_eq!(l.cycle_start_at(Seconds::new(67.1)), Seconds::new(67.0));
    }
}
