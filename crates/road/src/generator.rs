//! Seeded random corridor generation.
//!
//! The paper evaluates on a single hand-surveyed road section. To test the
//! optimizer's robustness beyond one geometry — and to drive the
//! corridor-sweep benchmarks — this module generates plausible arterial
//! corridors: several uncoordinated fixed-time signals, an optional stop
//! sign, rolling grade, and consistent speed limits, all deterministically
//! from a seed.

use crate::builder::RoadBuilder;
use crate::segment::Road;
use serde::{Deserialize, Serialize};
use velopt_common::rng::SplitMix64;
use velopt_common::units::{KilometersPerHour, Meters, Seconds};
use velopt_common::{Error, Result};

/// Parameters of the corridor distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorridorTemplate {
    /// Corridor length range in meters.
    pub length: (f64, f64),
    /// Number of traffic lights (inclusive range).
    pub lights: (usize, usize),
    /// Red and green period range in seconds (each drawn independently).
    pub phase: (f64, f64),
    /// Probability of one stop sign in the first third of the corridor.
    pub stop_sign_probability: f64,
    /// Maximum absolute grade in percent (piecewise-linear rolling profile).
    pub max_grade_percent: f64,
    /// Speed limits in km/h (min, max).
    pub limits_kmh: (f64, f64),
}

impl Default for CorridorTemplate {
    fn default() -> Self {
        Self {
            length: (2000.0, 6000.0),
            lights: (1, 4),
            phase: (20.0, 45.0),
            stop_sign_probability: 0.5,
            max_grade_percent: 4.0,
            limits_kmh: (40.0, 70.0),
        }
    }
}

impl CorridorTemplate {
    /// Validates the template ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] on inverted or non-physical ranges.
    pub fn validated(self) -> Result<Self> {
        if self.length.0 <= 0.0 || self.length.1 < self.length.0 {
            return Err(Error::invalid_input("length range inverted"));
        }
        if self.lights.1 < self.lights.0 {
            return Err(Error::invalid_input("light count range inverted"));
        }
        if self.phase.0 <= 0.0 || self.phase.1 < self.phase.0 {
            return Err(Error::invalid_input("phase range inverted"));
        }
        if !(0.0..=1.0).contains(&self.stop_sign_probability) {
            return Err(Error::invalid_input("stop-sign probability not in [0,1]"));
        }
        if self.max_grade_percent < 0.0 {
            return Err(Error::invalid_input("max grade must be non-negative"));
        }
        if self.limits_kmh.0 <= 0.0 || self.limits_kmh.1 < self.limits_kmh.0 {
            return Err(Error::invalid_input("speed-limit range inverted"));
        }
        Ok(self)
    }

    /// Generates one corridor from the template with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the template is invalid.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> velopt_common::Result<()> {
    /// use velopt_road::CorridorTemplate;
    ///
    /// let road = CorridorTemplate::default().generate(7)?;
    /// assert!(road.traffic_lights().len() >= 1);
    /// assert_eq!(road, CorridorTemplate::default().generate(7)?); // deterministic
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(&self, seed: u64) -> Result<Road> {
        let t = self.validated()?;
        let mut rng = SplitMix64::new(seed);
        let length = rng.uniform(t.length.0, t.length.1).round();
        let mut builder = RoadBuilder::new(Meters::new(length));
        builder.default_limits(
            KilometersPerHour::new(t.limits_kmh.0).to_meters_per_second(),
            KilometersPerHour::new(t.limits_kmh.1).to_meters_per_second(),
        );

        // Lights spread over the middle 80% of the corridor with a minimum
        // spacing, each with its own phase lengths and offset.
        let n_lights = t.lights.0 + (rng.next_u64() as usize) % (t.lights.1 - t.lights.0 + 1);
        let usable = 0.8 * length;
        let spacing = usable / n_lights as f64;
        for i in 0..n_lights {
            let base = 0.1 * length + i as f64 * spacing;
            let pos = rng
                .uniform(base + 0.2 * spacing, base + 0.8 * spacing)
                .round();
            let red = rng.uniform(t.phase.0, t.phase.1).round();
            let green = rng.uniform(t.phase.0, t.phase.1).round();
            let offset = rng.uniform(0.0, red + green).round();
            builder.traffic_light(
                Meters::new(pos),
                Seconds::new(red),
                Seconds::new(green),
                Seconds::new(offset),
            );
        }

        if rng.chance(t.stop_sign_probability) {
            let pos = rng.uniform(0.05 * length, 0.3 * length).round();
            builder.stop_sign(Meters::new(pos));
        }

        // Rolling grade: knots every ~500 m, zero at both ends.
        if t.max_grade_percent > 0.0 {
            let knots = (length / 500.0).floor() as usize;
            builder.grade_knot(Meters::ZERO, 0.0);
            for k in 1..knots {
                let x = k as f64 * 500.0;
                let g = rng.uniform(-t.max_grade_percent, t.max_grade_percent);
                builder.grade_knot(Meters::new(x), g);
            }
            builder.grade_knot(Meters::new(length), 0.0);
        }

        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_validation() {
        let good = CorridorTemplate::default();
        assert!(good.validated().is_ok());
        assert!(CorridorTemplate {
            length: (100.0, 50.0),
            ..good
        }
        .validated()
        .is_err());
        assert!(CorridorTemplate {
            lights: (3, 1),
            ..good
        }
        .validated()
        .is_err());
        assert!(CorridorTemplate {
            stop_sign_probability: 1.5,
            ..good
        }
        .validated()
        .is_err());
        assert!(CorridorTemplate {
            limits_kmh: (0.0, 50.0),
            ..good
        }
        .validated()
        .is_err());
    }

    #[test]
    fn generation_is_deterministic_and_varies_by_seed() {
        let t = CorridorTemplate::default();
        let a = t.generate(1).unwrap();
        let b = t.generate(1).unwrap();
        let c = t.generate(2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// Every `f64` reachable through the public accessors, as raw bits, so
    /// equality means bit-identical rather than merely `==` (which would
    /// conflate `0.0` and `-0.0`).
    fn road_bits(road: &Road) -> Vec<u64> {
        let mut bits = vec![road.length().value().to_bits()];
        for z in road.speed_zones() {
            bits.extend([
                z.start.value().to_bits(),
                z.end.value().to_bits(),
                z.min.value().to_bits(),
                z.max.value().to_bits(),
            ]);
        }
        for s in road.stop_signs() {
            bits.push(s.position.value().to_bits());
        }
        for l in road.traffic_lights() {
            bits.extend([
                l.position().value().to_bits(),
                l.red().value().to_bits(),
                l.green().value().to_bits(),
                l.offset().value().to_bits(),
            ]);
        }
        let step = road.length().value() / 64.0;
        for k in 0..=64 {
            bits.push(
                road.grade_at(Meters::new(k as f64 * step))
                    .value()
                    .to_bits(),
            );
        }
        bits
    }

    #[test]
    fn generation_is_bit_identical_across_threads() {
        let t = CorridorTemplate::default();
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let reference = road_bits(&t.generate(seed).unwrap());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| scope.spawn(|| t.generate(seed).unwrap()))
                    .collect();
                for h in handles {
                    let road = h.join().unwrap();
                    assert_eq!(
                        road_bits(&road),
                        reference,
                        "seed {seed} diverged across threads"
                    );
                }
            });
        }
    }

    #[test]
    fn zero_light_template_generates() {
        let t = CorridorTemplate {
            lights: (0, 0),
            stop_sign_probability: 0.0,
            ..CorridorTemplate::default()
        };
        for seed in 0..8 {
            let road = t.generate(seed).unwrap();
            assert!(road.traffic_lights().is_empty());
            assert!(road.stop_signs().is_empty());
        }
    }

    #[test]
    fn certain_stop_sign_template_generates() {
        let t = CorridorTemplate {
            stop_sign_probability: 1.0,
            ..CorridorTemplate::default()
        };
        for seed in 0..8 {
            let road = t.generate(seed).unwrap();
            assert_eq!(road.stop_signs().len(), 1);
            let pos = road.stop_signs()[0].position;
            assert!(pos.value() > 0.0 && pos < road.length());
        }
    }

    #[test]
    fn short_corridor_template_generates() {
        // The router proptests draw tiny corridors; make sure the generator
        // stays valid down at the scale they use.
        let t = CorridorTemplate {
            length: (60.0, 160.0),
            lights: (0, 1),
            phase: (10.0, 20.0),
            stop_sign_probability: 0.5,
            max_grade_percent: 3.0,
            limits_kmh: (30.0, 50.0),
        };
        for seed in 0..32 {
            let road = t.generate(seed).unwrap();
            assert!(road.length().value() >= 60.0);
        }
    }

    #[test]
    fn generated_roads_respect_template_bounds() {
        let t = CorridorTemplate::default();
        for seed in 0..25 {
            let road = t.generate(seed).unwrap();
            assert!(road.length().value() >= 2000.0 && road.length().value() <= 6000.0);
            let n = road.traffic_lights().len();
            assert!((1..=4).contains(&n), "{n} lights");
            for light in road.traffic_lights() {
                assert!(light.red().value() >= 20.0 && light.red().value() <= 45.0);
                assert!(light.green().value() >= 20.0 && light.green().value() <= 45.0);
                assert!(light.position().value() > 0.0);
                assert!(light.position() < road.length());
            }
            assert!(road.stop_signs().len() <= 1);
        }
    }

    #[test]
    fn lights_are_spaced_apart() {
        let t = CorridorTemplate {
            lights: (4, 4),
            ..CorridorTemplate::default()
        };
        for seed in 0..10 {
            let road = t.generate(seed).unwrap();
            for w in road.traffic_lights().windows(2) {
                assert!(
                    (w[1].position() - w[0].position()).value() > 100.0,
                    "lights too close on seed {seed}"
                );
            }
        }
    }
}
