//! One-dimensional road corridor model.
//!
//! The paper's evaluation road is a 4.2 km section of US-25 near Greenville,
//! SC with a stop sign at 490 m and two fixed-time traffic lights at 1800 m
//! and 3460 m (§III-A; the printed text drops digits — see `DESIGN.md` for
//! the reconstruction). This crate models such corridors as ordered features
//! on a line:
//!
//! * [`SpeedZone`] — minimum/maximum speed limits over a distance interval
//!   (the `v_min(s_i)`/`v_max(s_i)` bounds of Eq. 7a),
//! * [`StopSign`] — a mandatory `v = 0` point (Eq. 7c),
//! * [`TrafficLight`] — a fixed-cycle signal (red period `t_red`, green
//!   period `t_green`, per §II-B),
//! * a piecewise-linear grade profile feeding the `θ` term of Eq. (1).
//!
//! # Examples
//!
//! ```
//! use velopt_common::units::{Meters, Seconds};
//! use velopt_road::{Phase, Road};
//!
//! let road = Road::us25();
//! assert_eq!(road.length(), Meters::new(4200.0));
//! // Each light cycles 30 s red then 30 s green from its offset.
//! let light = &road.traffic_lights()[0];
//! let red_starts = light.offset();
//! assert_eq!(light.phase_at(red_starts + Seconds::new(1.0)), Phase::Red);
//! assert_eq!(light.phase_at(red_starts + Seconds::new(31.0)), Phase::Green);
//! ```

mod builder;
mod generator;
mod graph;
mod light;
mod segment;

pub use builder::{RoadBuilder, MAX_STOP_SIGNS};
pub use generator::CorridorTemplate;
pub use graph::{EdgeId, NetworkTemplate, NodeId, RoadEdge, RoadGraph};
pub use light::{Phase, TrafficLight};
pub use segment::{Road, SpeedZone, StopSign};
