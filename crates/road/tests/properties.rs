//! Property-based tests for signal-phase arithmetic.

use proptest::prelude::*;
use velopt_common::units::{Meters, Seconds};
use velopt_road::{Phase, Road, TrafficLight};

proptest! {
    /// The phase function is periodic with the cycle length.
    #[test]
    fn phase_is_cycle_periodic(
        red in 5.0f64..120.0,
        green in 5.0f64..120.0,
        offset in -100.0f64..100.0,
        t in 0.0f64..10_000.0,
        k in 1u32..20,
    ) {
        let light = TrafficLight::new(
            Meters::new(10.0), Seconds::new(red), Seconds::new(green), Seconds::new(offset),
        ).unwrap();
        let cycle = red + green;
        let p1 = light.phase_at(Seconds::new(t));
        let p2 = light.phase_at(Seconds::new(t + cycle * k as f64));
        prop_assert_eq!(p1, p2);
    }

    /// Green windows cover exactly green/(red+green) of a whole number of
    /// cycles.
    #[test]
    fn green_window_coverage_fraction(
        red in 5.0f64..90.0,
        green in 5.0f64..90.0,
        cycles in 1u32..12,
    ) {
        let light = TrafficLight::new(
            Meters::ZERO, Seconds::new(red), Seconds::new(green), Seconds::ZERO,
        ).unwrap();
        let horizon = (red + green) * cycles as f64;
        let windows = light.green_windows(Seconds::ZERO, Seconds::new(horizon));
        let total: f64 = windows.iter().map(|(a, b)| (*b - *a).value()).sum();
        prop_assert!((total - green * cycles as f64).abs() < 1e-6);
    }

    /// Every instant inside a reported green window really is green.
    #[test]
    fn windows_are_green_inside(
        red in 5.0f64..90.0,
        green in 5.0f64..90.0,
        offset in 0.0f64..50.0,
        from in 0.0f64..500.0,
    ) {
        let light = TrafficLight::new(
            Meters::ZERO, Seconds::new(red), Seconds::new(green), Seconds::new(offset),
        ).unwrap();
        for (a, b) in light.green_windows(Seconds::new(from), Seconds::new(400.0)) {
            let mid = Seconds::new(0.5 * (a.value() + b.value()));
            prop_assert_eq!(light.phase_at(mid), Phase::Green);
            prop_assert!(a >= Seconds::new(from));
        }
    }

    /// `next_green_start` returns a green instant no earlier than the query.
    #[test]
    fn next_green_is_green_and_not_before(
        red in 5.0f64..90.0,
        green in 5.0f64..90.0,
        t in 0.0f64..1000.0,
    ) {
        let light = TrafficLight::new(
            Meters::ZERO, Seconds::new(red), Seconds::new(green), Seconds::ZERO,
        ).unwrap();
        let g = light.next_green_start(Seconds::new(t));
        prop_assert!(g >= Seconds::new(t));
        // Sample just past the boundary to dodge f64 rounding in the modular
        // cycle arithmetic.
        prop_assert_eq!(light.phase_at(g + Seconds::new(1e-6)), Phase::Green);
        // It is the *first* green instant: a moment before is red (when g > t).
        if g > Seconds::new(t) + Seconds::new(1e-6) {
            prop_assert_eq!(light.phase_at(g - Seconds::new(1e-6)), Phase::Red);
        }
    }

    /// Speed limits on the canonical road are always ordered.
    #[test]
    fn us25_limits_ordered(x in 0.0f64..4200.0) {
        let road = Road::us25();
        let (lo, hi) = road.speed_limits_at(Meters::new(x));
        prop_assert!(lo <= hi);
        prop_assert!(lo.value() >= 0.0);
    }
}
