//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use — `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and reports min/mean/max per iteration.
//! No statistical analysis, plots, or saved baselines.
//!
//! Like real criterion, running a bench binary with `--test` (as
//! `cargo test` does for `harness = false` bench targets) only smoke-runs
//! each benchmark once.

use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported for bench code that imports it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs one benchmark under the driver's current settings.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, self.test_mode, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, self.criterion.test_mode, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up (untimed).
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_bench(name: &str, samples: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        test_mode,
        durations: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("bench {name}: ok (smoke test)");
        return;
    }
    if b.durations.is_empty() {
        println!("bench {name}: no samples recorded");
        return;
    }
    let min = b.durations.iter().min().unwrap();
    let max = b.durations.iter().max().unwrap();
    let mean = b.durations.iter().sum::<Duration>() / b.durations.len() as u32;
    println!(
        "bench {name}: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
        min,
        mean,
        max,
        b.durations.len()
    );
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
