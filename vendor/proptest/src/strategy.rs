//! Value-generation strategies for the proptest stub.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Object-safe for the `generate` method, so strategies can be boxed and
/// unioned; combinators are provided methods gated on `Sized`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a bounded-depth recursive strategy: at each level the value
    /// is either a leaf (this strategy) or one produced by `recurse` from
    /// the previous level.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let rec = recurse(strat.clone()).boxed();
            strat = Union::new(vec![leaf.clone(), rec]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty integer range strategy");
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// `any::<T>()` marker strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces an unconstrained-value strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// `prop::collection::vec`: a vector whose length is drawn from `sizes`
/// and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

/// Strategy for vectors (see [`vec()`]).
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.sizes.end - self.sizes.start).max(1) as u64;
        let len = self.sizes.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of`: `None` half the time, `Some(inner)` otherwise.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy for options (see [`option_of`]).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Character-class string patterns like `"[a-zA-Z0-9_ ]{0,32}"`.
///
/// Supports a single bracketed class (literal characters and `c-c` ranges)
/// followed by an optional `{n}` or `{lo,hi}` repetition; a bare class
/// generates one character. This covers every pattern used in the
/// workspace's test suites.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a as u32 > b as u32 {
                return None;
            }
            for c in a as u32..=b as u32 {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let reps = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn class_patterns_parse() {
        let (alpha, lo, hi) = parse_class_pattern("[a-c_]{0,4}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c', '_']);
        assert_eq!((lo, hi), (0, 4));
        let (alpha, _, _) = parse_class_pattern("[ -~]{0,64}").unwrap();
        assert_eq!(alpha.len(), 95);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| vec(inner, 0..4).prop_map(Tree::Node));
        let mut rng = TestRng::new(42);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }
}
