//! Configuration, RNG, and case outcomes for the proptest stub.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; skip it.
    Reject(String),
    /// An assertion failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }

    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }
}

/// Deterministic SplitMix64 generator used to drive strategies.
///
/// Seeded from an FNV-1a hash of the test name so every run of the suite
/// explores the same cases on every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a raw value.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
