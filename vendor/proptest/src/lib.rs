//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/
//! `boxed`, range and `any::<T>()` leaf strategies, a character-class
//! string strategy, tuple/vec/option combinators, `prop_oneof!`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, acceptable for this suite:
//!
//! * **No shrinking** — a failing case reports its inputs but is not
//!   minimized.
//! * **Deterministic seeding** — cases derive from an FNV hash of the test
//!   name, so runs are reproducible across machines (set `PROPTEST_CASES`
//!   to change the case count; default 64).

pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }

    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_prop(x in 0.0f64..1.0, flag in any::<bool>()) {
///         prop_assert!(x < 1.0 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (skips it) when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
