//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! Each derive expands to an empty token stream: the annotated type keeps
//! compiling exactly as written, and no trait impl is emitted (nothing in
//! this workspace consumes serde impls — wire formats are hand-rolled).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
