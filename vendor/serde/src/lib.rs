//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `serde` cannot be resolved. Nothing in the workspace actually
//! serializes data through serde — the wire formats are hand-rolled
//! (`velopt-traci`, `velopt-cloud`) — but many types carry
//! `#[derive(Serialize, Deserialize)]` so downstream users can opt into
//! serialization when building against the real crate. This stub keeps
//! those derives compiling: the derive macros expand to nothing and the
//! traits exist purely as names.
//!
//! Swapping the workspace dependency back to the real `serde` requires no
//! source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait DeserializeMarker<'de> {}
