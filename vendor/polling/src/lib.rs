//! Minimal readiness polling for the velopt cloud serving tier.
//!
//! First-party vendored stand-in for the `polling` crate: a thin, safe wrapper
//! around the raw `epoll_*` family (plus `eventfd` for cross-thread wakeups)
//! declared via direct `extern "C"` bindings — no libc crate, no crates.io.
//! The API is deliberately tiny: a [`Poller`] owns one epoll instance, file
//! descriptors are registered with a `u64` key and an [`Interest`] mask,
//! [`Poller::wait`] fills an [`Events`] buffer, and a [`Waker`] interrupts a
//! blocked `wait` from another thread.
//!
//! Only Linux gets a real implementation; other Unixes compile but every call
//! returns [`std::io::ErrorKind::Unsupported`] so downstream crates can gate
//! at runtime instead of failing to build.
//!
//! Epoll is used in level-triggered mode: an event keeps firing while the
//! condition holds, so callers never need to drain sockets to EAGAIN before
//! sleeping (they still should, for throughput) and a missed event is
//! re-reported on the next `wait`. That choice trades a few spurious wakeups
//! for a state machine that is much easier to prove correct.

#![forbid(unsafe_op_in_unsafe_fn)]

#[cfg(not(unix))]
compile_error!("the vendored `polling` crate supports Unix targets only");

/// Readiness directions a registration subscribes to.
///
/// Hangup and error conditions are always reported regardless of the mask, so
/// an empty interest (`Interest::NONE`) still detects peer disconnects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// A single readiness notification, decoded from the raw epoll bits.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The `u64` key supplied at registration time.
    pub key: u64,
    /// Reading will make progress (data, EOF, or a pending error to collect).
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
    /// `EPOLLHUP`/`EPOLLERR`: the descriptor is in a terminal state.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    mod ffi {
        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const EFD_CLOEXEC: i32 = 0o2000000;
        pub const EFD_NONBLOCK: i32 = 0o4000;

        /// Mirror of `struct epoll_event`. The kernel ABI packs this struct
        /// on x86/x86_64 (12 bytes); other architectures use natural layout.
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
        #[derive(Clone, Copy, Default)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: i32,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout: i32,
            ) -> i32;
            pub fn eventfd(initval: u32, flags: i32) -> i32;
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = ffi::EPOLLRDHUP;
        if interest.readable {
            bits |= ffi::EPOLLIN;
        }
        if interest.writable {
            bits |= ffi::EPOLLOUT;
        }
        bits
    }

    fn decode(raw: ffi::EpollEvent) -> Event {
        let bits = raw.events;
        Event {
            key: raw.data,
            // HUP/ERR/RDHUP count as readable so callers observe EOF or the
            // pending socket error through an ordinary read().
            readable: bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP | ffi::EPOLLHUP | ffi::EPOLLERR) != 0,
            writable: bits & (ffi::EPOLLOUT | ffi::EPOLLERR) != 0,
            closed: bits & (ffi::EPOLLHUP | ffi::EPOLLERR) != 0,
        }
    }

    /// Reusable output buffer for [`Poller::wait`].
    pub struct Events {
        raw: Vec<ffi::EpollEvent>,
        count: usize,
    }

    impl Events {
        /// A buffer able to receive up to `capacity` events per wait call.
        pub fn with_capacity(capacity: usize) -> Events {
            Events {
                raw: vec![ffi::EpollEvent::default(); capacity.max(1)],
                count: 0,
            }
        }

        pub fn len(&self) -> usize {
            self.count
        }

        pub fn is_empty(&self) -> bool {
            self.count == 0
        }

        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            self.raw[..self.count].iter().map(|raw| decode(*raw))
        }
    }

    /// One epoll instance. Registration and waiting may happen from different
    /// threads; the velopt reactor dedicates one poller per shard thread.
    #[derive(Debug)]
    pub struct Poller {
        fd: OwnedFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut ffi::EpollEvent>) -> io::Result<()> {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut ffi::EpollEvent);
            let rc = unsafe { ffi::epoll_ctl(self.fd.as_raw_fd(), op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` under `key`. The caller must keep `fd` open while it
        /// is registered and must not register the same fd twice.
        pub fn add(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let mut event = ffi::EpollEvent {
                events: interest_bits(interest),
                data: key,
            };
            self.ctl(ffi::EPOLL_CTL_ADD, fd, Some(&mut event))
        }

        /// Change the interest mask of an already-registered fd.
        pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let mut event = ffi::EpollEvent {
                events: interest_bits(interest),
                data: key,
            };
            self.ctl(ffi::EPOLL_CTL_MOD, fd, Some(&mut event))
        }

        /// Remove a registration. Closing the fd removes it implicitly; this
        /// exists for callers that keep the fd alive past deregistration.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(ffi::EPOLL_CTL_DEL, fd, None)
        }

        /// Block until at least one event arrives, the timeout elapses
        /// (`Ok(0)`), or a [`Waker`] registered on this poller fires.
        /// `None` waits forever. EINTR is retried internally.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => {
                    // Round up so sub-millisecond timeouts still sleep.
                    let ms = d
                        .as_millis()
                        .max(if d.is_zero() { 0 } else { 1 })
                        .min(i32::MAX as u128);
                    ms as i32
                }
            };
            loop {
                let rc = unsafe {
                    ffi::epoll_wait(
                        self.fd.as_raw_fd(),
                        events.raw.as_mut_ptr(),
                        events.raw.len() as i32,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    events.count = rc as usize;
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    /// Cross-thread wakeup for a blocked [`Poller::wait`], backed by a
    /// nonblocking `eventfd`. Register [`Waker::as_raw_fd`] on the poller
    /// with a sentinel key and readable interest; call [`Waker::wake`] from
    /// any thread; call [`Waker::drain`] when the sentinel key fires.
    #[derive(Debug)]
    pub struct Waker {
        file: File,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Waker {
                file: unsafe { File::from_raw_fd(fd) },
            })
        }

        pub fn as_raw_fd(&self) -> RawFd {
            self.file.as_raw_fd()
        }

        /// Signal the poller. Saturating the eventfd counter (WouldBlock)
        /// still leaves it readable, so that case is success.
        pub fn wake(&self) -> io::Result<()> {
            match (&self.file).write(&1u64.to_ne_bytes()) {
                Ok(_) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }

        /// Reset the eventfd counter so the readable condition clears.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            while (&self.file).read(&mut buf).is_ok() {}
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "polling requires epoll (Linux only)",
        )
    }

    pub struct Events;

    impl Events {
        pub fn with_capacity(_capacity: usize) -> Events {
            Events
        }

        pub fn len(&self) -> usize {
            0
        }

        pub fn is_empty(&self) -> bool {
            true
        }

        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            std::iter::empty()
        }
    }

    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        pub fn add(&self, _fd: RawFd, _key: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn modify(&self, _fd: RawFd, _key: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    #[derive(Debug)]
    pub struct Waker;

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            Err(unsupported())
        }

        pub fn as_raw_fd(&self) -> RawFd {
            -1
        }

        pub fn wake(&self) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn drain(&self) {}
    }
}

pub use sys::{Events, Poller, Waker};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn timeout_returns_zero_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn readable_after_peer_write() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet.
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);
        assert!(!ev.closed);

        let mut buf = [0u8; 16];
        let read = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..read], b"ping");
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let (_client, server) = pair();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 3, Interest::READ).unwrap();
        poller
            .modify(server.as_raw_fd(), 3, Interest::WRITE)
            .unwrap();

        // A fresh socket with empty send buffer is immediately writable.
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 3);
        assert!(ev.writable);
    }

    #[test]
    fn peer_close_reports_readable() {
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 11, Interest::READ).unwrap();
        drop(client);

        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 11);
        // Peer close must surface as readable so a read() observes EOF.
        assert!(ev.readable);
        let mut buf = [0u8; 4];
        assert_eq!((&server).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn waker_interrupts_blocked_wait() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::new(Waker::new().unwrap());
        poller
            .add(waker.as_raw_fd(), u64::MAX, Interest::READ)
            .unwrap();

        let waker2 = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker2.wake().unwrap();
        });

        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().key, u64::MAX);
        waker.drain();
        handle.join().unwrap();

        // Drained: the next wait times out instead of spinning on the waker.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn delete_stops_notifications() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
        poller.delete(server.as_raw_fd()).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn wake_is_saturating_and_drain_resets() {
        let waker = Waker::new().unwrap();
        for _ in 0..1000 {
            waker.wake().unwrap();
        }
        waker.drain();
        let poller = Poller::new().unwrap();
        poller.add(waker.as_raw_fd(), 0, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
