//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API (guards
//! returned directly from `lock()`/`read()`/`write()`). A poisoned std lock
//! is recovered rather than propagated, matching parking_lot's behavior of
//! not poisoning on panic.

use std::sync;
pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}
