//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API this workspace uses:
//! [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] read/write
//! traits with big-endian integer and float accessors. Semantics match the
//! real crate for this subset — including panics on out-of-bounds reads, so
//! callers' `remaining()` guards behave identically.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view sharing the same storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Copies the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building frames.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, tail);
        BytesMut { data: head }
    }

    /// Empties the buffer, keeping its capacity (the buffer-pool reset).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Total capacity (bytes the buffer can hold without reallocating).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self.data)
    }
}

/// Read access to a byte cursor, big-endian accessors included.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on an exhausted buffer (match `remaining()` first).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }

    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut arr = [0u8; N];
        self.copy_to_slice(&mut arr);
        arr
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Write access to a growable byte buffer, big-endian writers included.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends an `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_i8(-3);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_i32(-42);
        buf.put_u64(1 << 40);
        buf.put_f64(3.5);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_i8(), -3);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_i32(), -42);
        assert_eq!(b.get_u64(), 1 << 40);
        assert_eq!(b.get_f64(), 3.5);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(1..4)[..], &[2, 3, 4]);
        let mut c = b.clone();
        let head = c.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&c[..], &[3, 4, 5]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
    }
}
