//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The workspace has no `serde_json` (the build environment is offline), so
//! snapshot export and the benchmark baseline files use this ~200-line
//! subset instead. It supports the full JSON grammar except that numbers
//! are always `f64` (integers round-trip exactly up to 2^53, far beyond any
//! counter this repo produces in a run) and object keys keep their
//! insertion order.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved, lookup is linear.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) on the first
    /// syntax error, on trailing garbage, and on empty input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        if pos >= bytes.len() {
            return Err("empty JSON document".to_string());
        }
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Serializes the value as compact JSON (`value.to_string()` via the
/// blanket `ToString`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Rust's shortest-round-trip `Display` for `f64`, except non-finite values
/// (which JSON cannot carry) become `null`.
fn write_num(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of JSON".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte `{}` at {pos}",
            *c as char,
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by anything this
                        // repo writes; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (bytes is valid UTF-8: it came
                // from a `&str`).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("dp.relax \"hot\"\n".into())),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(0.25), Json::Null]),
            ),
            ("ok".into(), Json::Bool(true)),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn lookup_helpers() {
        let v = Json::parse(r#"{"a": 1, "b": [2, 3], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(v.get("a").unwrap().get("nested").is_none());
    }

    #[test]
    fn errors_are_clear() {
        assert!(Json::parse("").unwrap_err().contains("empty"));
        assert!(Json::parse("   ").unwrap_err().contains("empty"));
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").unwrap_err().contains("trailing"));
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_precision_survives() {
        let x = std::f64::consts::FRAC_1_SQRT_2;
        let text = Json::Num(x).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x);
        // Non-finite values degrade to null rather than invalid JSON.
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café \t \\""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "café \t \\");
        let s = Json::Str("日本\u{1}".into()).to_string();
        assert_eq!(Json::parse(&s).unwrap().as_str().unwrap(), "日本\u{1}");
    }
}
