//! Zero-dependency runtime telemetry: spans, counters, fixed-bucket
//! histograms, a process-global registry, and JSON snapshot export.
//!
//! The velopt workspace needs a machine-readable performance trajectory —
//! where solver wall time goes, how often the arena recycles buffers, what
//! the cloud's request mix looks like — without paying for it on the hot
//! path when nobody is looking. This crate supplies the thinnest facade
//! that covers those needs:
//!
//! * [`span`] — RAII wall-time measurement; the elapsed seconds land in a
//!   histogram named after the span when the guard drops.
//! * [`add`] — monotonically increasing [`Counter`]s.
//! * [`observe`] / [`observe_with`] — direct histogram observations.
//! * [`snapshot`] / [`snapshot_json`] — a point-in-time, name-ordered copy
//!   of every metric, exportable as JSON (and parseable back via
//!   [`Snapshot::from_json`]).
//!
//! # Feature gating and the overhead guarantee
//!
//! The global facade is compiled **only** when the `enabled` feature is on.
//! Off (the default), every facade function is an empty `#[inline(always)]`
//! body, [`Span`] is a zero-sized type, and no registry exists in the
//! binary — instrumented code is bit-identical in behavior and within
//! noise in speed compared to uninstrumented code. Downstream crates
//! re-export the switch as their own `telemetry` feature.
//!
//! The data structures themselves ([`Registry`], [`Counter`],
//! [`Histogram`], [`Snapshot`], [`json`]) are *always* compiled and fully
//! functional, so tests and tools (the bench-suite baseline comparator
//! uses [`json`]) work in every configuration; only the process-global
//! entry points vanish.
//!
//! # Examples
//!
//! ```
//! // Works identically with the feature on or off; with it off the span
//! // and counter are no-ops and the snapshot is empty.
//! {
//!     let _guard = telemetry::span("work.phase");
//!     telemetry::add("work.items", 3);
//! }
//! let snap = telemetry::snapshot();
//! #[cfg(feature = "enabled")]
//! assert_eq!(snap.counter("work.items"), Some(3));
//! #[cfg(not(feature = "enabled"))]
//! assert!(snap.is_empty());
//! ```

pub mod json;
mod registry;

pub use registry::{
    Counter, CounterSnapshot, Histogram, HistogramSnapshot, Registry, Snapshot, DURATION_BUCKETS,
};

#[cfg(feature = "enabled")]
mod facade {
    use super::registry::{Registry, Snapshot, DURATION_BUCKETS};
    use std::sync::OnceLock;
    use std::time::Instant;

    static GLOBAL: OnceLock<Registry> = OnceLock::new();

    /// The process-global registry every facade call lands in.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// An RAII guard timing a region of code; on drop, the elapsed seconds
    /// are recorded into the global histogram named after the span.
    #[must_use = "a span measures until it is dropped"]
    #[derive(Debug)]
    pub struct Span {
        name: &'static str,
        start: Instant,
    }

    impl Span {
        /// Seconds elapsed since the span started.
        pub fn elapsed_seconds(&self) -> f64 {
            self.start.elapsed().as_secs_f64()
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            observe(self.name, self.elapsed_seconds());
        }
    }

    /// Starts a span; see [`Span`].
    pub fn span(name: &'static str) -> Span {
        Span {
            name,
            start: Instant::now(),
        }
    }

    /// Adds `n` to the global counter `name`.
    pub fn add(name: &'static str, n: u64) {
        global().counter(name).add(n);
    }

    /// Records `value` into the global histogram `name` (default
    /// duration buckets).
    pub fn observe(name: &'static str, value: f64) {
        global().histogram(name, DURATION_BUCKETS).record(value);
    }

    /// Records `value` into the global histogram `name`, creating it with
    /// the given bucket bounds on first use.
    pub fn observe_with(name: &'static str, bounds: &[f64], value: f64) {
        global().histogram(name, bounds).record(value);
    }

    /// A point-in-time copy of every global metric.
    pub fn snapshot() -> Snapshot {
        global().snapshot()
    }

    /// Zeroes every global metric (tests and long-lived servers).
    pub fn reset() {
        global().reset();
    }
}

#[cfg(not(feature = "enabled"))]
mod facade {
    use super::registry::Snapshot;

    /// The no-op stand-in for the enabled build's RAII timing guard.
    #[must_use = "a span measures until it is dropped"]
    #[derive(Debug)]
    pub struct Span(());

    impl Span {
        /// Always `0.0` in the disabled build.
        pub fn elapsed_seconds(&self) -> f64 {
            0.0
        }
    }

    /// No-op; returns a zero-sized guard.
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    /// No-op.
    #[inline(always)]
    pub fn add(_name: &'static str, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn observe(_name: &'static str, _value: f64) {}

    /// No-op.
    #[inline(always)]
    pub fn observe_with(_name: &'static str, _bounds: &[f64], _value: f64) {}

    /// Always the empty snapshot in the disabled build.
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset() {}
}

pub use facade::{add, observe, observe_with, reset, snapshot, span, Span};

#[cfg(feature = "enabled")]
pub use facade::global;

/// The global snapshot as compact JSON (`{"counters":[],"histograms":[]}`
/// when the `enabled` feature is off or nothing has been recorded).
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every facade entry point must compile and run in both feature
    /// configurations; with `enabled` off they are no-ops, which is the
    /// "telemetry-off call sites still compile" guarantee.
    #[test]
    fn facade_compiles_and_runs_in_this_configuration() {
        {
            let guard = span("test.span");
            assert!(guard.elapsed_seconds() >= 0.0);
        }
        add("test.counter", 2);
        observe("test.histogram", 0.5);
        observe_with("test.custom", &[1.0, 2.0], 1.5);
        let snap = snapshot();
        let json = snapshot_json();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snap);
        reset();
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_facade_records_nothing() {
        add("ghost", 100);
        observe("ghost.hist", 1.0);
        let _s = span("ghost.span");
        assert!(snapshot().is_empty());
        assert_eq!(snapshot_json(), r#"{"counters":[],"histograms":[]}"#);
        assert_eq!(
            std::mem::size_of::<Span>(),
            0,
            "disabled Span is zero-sized"
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_facade_records_spans_counters_histograms() {
        reset();
        {
            let _guard = span("lib.test.timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        add("lib.test.count", 5);
        add("lib.test.count", 5);
        observe_with("lib.test.values", &[10.0], 3.0);
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test.count"), Some(10));
        let timed = snap.histogram("lib.test.timed").unwrap();
        assert_eq!(timed.count, 1);
        assert!(timed.sum >= 0.002, "span recorded {}s", timed.sum);
        assert_eq!(
            snap.histogram("lib.test.values").unwrap().counts,
            vec![1, 0]
        );
        reset();
        assert_eq!(snapshot().counter("lib.test.count"), Some(0));
    }
}
