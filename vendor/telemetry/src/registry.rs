//! Counters, fixed-bucket histograms, and the registry that owns them.
//!
//! Everything in this module is always compiled and fully functional — the
//! `enabled` feature only gates the *global* facade in the crate root. That
//! split keeps the no-op guarantee (call sites vanish when the feature is
//! off) while letting tests exercise the real data structures in every
//! build configuration.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The default histogram buckets: wall-clock seconds from 10 µs to 10 s in
/// a 1–2.5–5 progression, matching the latencies of everything this repo
/// times (DP phases, replanner ticks, request handling).
pub const DURATION_BUCKETS: &[f64] = &[
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

#[derive(Debug, Clone)]
struct HistogramState {
    /// `counts[i]` covers `(bounds[i-1], bounds[i]]`; the final slot is the
    /// overflow bucket for values above every bound.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A histogram over fixed, caller-chosen bucket upper bounds.
///
/// A recorded value lands in the first bucket whose upper bound is **≥**
/// the value (values exactly on an edge belong to that edge's bucket);
/// values above the last bound land in a dedicated overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    state: Mutex<HistogramState>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            state: Mutex::new(HistogramState {
                counts: vec![0; bounds.len() + 1],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        let mut state = self.state.lock().expect("histogram lock poisoned");
        state.counts[idx] += 1;
        state.count += 1;
        state.sum += value;
        state.min = state.min.min(value);
        state.max = state.max.max(value);
    }

    /// The bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy of the histogram's contents under `name`.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let state = self.state.lock().expect("histogram lock poisoned");
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: state.counts.clone(),
            count: state.count,
            sum: state.sum,
            // Empty histograms report 0 extremes so the JSON stays finite.
            min: if state.count == 0 { 0.0 } else { state.min },
            max: if state.count == 0 { 0.0 } else { state.max },
        }
    }

    fn reset(&self) {
        let mut state = self.state.lock().expect("histogram lock poisoned");
        state.counts.iter_mut().for_each(|c| *c = 0);
        state.count = 0;
        state.sum = 0.0;
        state.min = f64::INFINITY;
        state.max = f64::NEG_INFINITY;
    }
}

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// The counter's registered name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: u64,
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The histogram's registered name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the extra final slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of a registry, ordered by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Every counter, name-ascending.
    pub counters: Vec<CounterSnapshot>,
    /// Every histogram, name-ascending.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as compact JSON.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(c.name.clone())),
                    ("value".into(), Json::Num(c.value as f64)),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(h.name.clone())),
                    (
                        "bounds".into(),
                        Json::Arr(h.bounds.iter().map(|&b| Json::Num(b)).collect()),
                    ),
                    (
                        "counts".into(),
                        Json::Arr(h.counts.iter().map(|&c| Json::Num(c as f64)).collect()),
                    ),
                    ("count".into(), Json::Num(h.count as f64)),
                    ("sum".into(), Json::Num(h.sum)),
                    ("min".into(), Json::Num(h.min)),
                    ("max".into(), Json::Num(h.max)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Arr(counters)),
            ("histograms".into(), Json::Arr(histograms)),
        ])
        .to_string()
    }

    /// Parses a snapshot back from its [`to_json`](Self::to_json) form.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed JSON or a missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let counters = root
            .get("counters")
            .and_then(Json::as_arr)
            .ok_or("snapshot missing `counters` array")?
            .iter()
            .map(|c| {
                Ok(CounterSnapshot {
                    name: c
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("counter missing `name`")?
                        .to_string(),
                    value: c
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or("counter missing `value`")? as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let histograms = root
            .get("histograms")
            .and_then(Json::as_arr)
            .ok_or("snapshot missing `histograms` array")?
            .iter()
            .map(|h| {
                let nums = |key: &str| -> Result<Vec<f64>, String> {
                    h.get(key)
                        .and_then(Json::as_arr)
                        .ok_or(format!("histogram missing `{key}`"))?
                        .iter()
                        .map(|x| x.as_f64().ok_or(format!("non-numeric `{key}` entry")))
                        .collect()
                };
                let num = |key: &str| -> Result<f64, String> {
                    h.get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("histogram missing `{key}`"))
                };
                Ok(HistogramSnapshot {
                    name: h
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("histogram missing `name`")?
                        .to_string(),
                    bounds: nums("bounds")?,
                    counts: nums("counts")?.into_iter().map(|c| c as u64).collect(),
                    count: num("count")? as u64,
                    sum: num("sum")?,
                    min: num("min")?,
                    max: num("max")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            counters,
            histograms,
        })
    }
}

/// A collection of named counters and histograms.
///
/// Handles are `Arc`s: fetch once, then update lock-free (counters) or
/// under the histogram's own mutex, without touching the registry map.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("registry lock poisoned");
        Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("registry lock poisoned");
        Arc::clone(
            histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every metric, ordered by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Zeroes every metric without dropping the registered handles.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("registry lock poisoned")
            .values()
        {
            c.value.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .expect("registry lock poisoned")
            .values()
        {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        reg.counter("b").add(1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_bucket_edges() {
        // Buckets: (-inf,1], (1,2], (2,4], (4,+inf) overflow.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Values exactly on an edge land in that edge's bucket.
        h.record(1.0);
        h.record(2.0);
        h.record(4.0);
        // Interior values.
        h.record(0.5);
        h.record(1.5);
        // Overflow: strictly above the last bound.
        h.record(4.000001);
        h.record(1e9);
        let s = h.snapshot("edges");
        assert_eq!(s.counts, vec![2, 2, 1, 2]);
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 1e9);
    }

    #[test]
    fn histogram_below_first_bound_and_mean() {
        let h = Histogram::new(&[10.0]);
        h.record(-5.0);
        h.record(0.0);
        h.record(10.0);
        let s = h.snapshot("low");
        assert_eq!(s.counts, vec![3, 0]);
        assert!((s.mean() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_zero_extremes() {
        let s = Histogram::new(&[1.0]).snapshot("empty");
        assert_eq!((s.count, s.min, s.max), (0, 0.0, 0.0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let reg = Registry::new();
        reg.counter("dp.solves").add(41);
        let h = reg.histogram("dp.relax_seconds", DURATION_BUCKETS);
        h.record(0.0031);
        h.record(0.25);
        h.record(99.0); // overflow
        let snap = reg.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("dp.solves"), Some(41));
        let hist = back.histogram("dp.relax_seconds").unwrap();
        assert_eq!(hist.count, 3);
        assert_eq!(*hist.counts.last().unwrap(), 1, "overflow bucket travels");
        assert_eq!(hist.max, 99.0);
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        assert!(Snapshot::from_json("").is_err());
        assert!(Snapshot::from_json("{}").unwrap_err().contains("counters"));
        assert!(
            Snapshot::from_json(r#"{"counters": [{"value": 1}], "histograms": []}"#)
                .unwrap_err()
                .contains("name")
        );
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let h = reg.histogram("y", &[1.0]);
        c.add(7);
        h.record(0.5);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(0));
        assert_eq!(snap.histogram("y").unwrap().count, 0);
        // Pre-reset handles still feed the same metrics.
        c.add(1);
        assert_eq!(reg.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let reg = Registry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(1);
        let names: Vec<_> = reg
            .snapshot()
            .counters
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
