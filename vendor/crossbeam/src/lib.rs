//! Offline stand-in for the `crossbeam` facade.
//!
//! Only the `channel` module's bounded/unbounded MPMC channels are provided
//! — the pieces this workspace uses (the cloud server's compute pool and
//! reactor-shard inboxes). They are built on `std::sync::mpsc` with the
//! receiver shared behind a mutex so it can be cloned across workers,
//! matching crossbeam's multi-consumer semantics for this use case.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when sending on a disconnected channel.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still exist).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues the value — blocking while a bounded channel is full —
        /// and errors if all receivers are gone. Unbounded sends never
        /// block.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// The receiving half of a channel; cloneable so multiple workers can
    /// compete for messages.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Returns immediately with a message, [`TryRecvError::Empty`], or
        /// [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates a bounded MPMC channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Tx::Bounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates an unbounded MPMC channel (sends never block).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Tx::Unbounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn two_workers_drain_the_channel() {
            let (tx, rx) = bounded::<u32>(8);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u32;
                        while let Ok(v) = rx.recv() {
                            got += v;
                        }
                        got
                    })
                })
                .collect();
            for i in 1..=10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 55);
        }

        #[test]
        fn unbounded_never_blocks_and_try_recv_drains() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            // Far beyond any bounded capacity; must not block the sender.
            for i in 0..10_000 {
                tx.send(i).unwrap();
            }
            let mut sum = 0u64;
            while let Ok(v) = rx.try_recv() {
                sum += u64::from(v);
            }
            assert_eq!(sum, (0..10_000u64).sum::<u64>());
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
