//! Offline stand-in for the `crossbeam` facade.
//!
//! Only the `channel` module's bounded MPMC channel is provided — the one
//! piece this workspace uses (the cloud server's worker pool). It is built
//! on `std::sync::mpsc::sync_channel` with the receiver shared behind a
//! mutex so it can be cloned across workers, matching crossbeam's
//! multi-consumer semantics for this use case.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when sending on a disconnected channel.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued; errors if all receivers are
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel; cloneable so multiple
    /// workers can compete for messages.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// Creates a bounded MPMC channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn two_workers_drain_the_channel() {
            let (tx, rx) = bounded::<u32>(8);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u32;
                        while let Ok(v) = rx.recv() {
                            got += v;
                        }
                        got
                    })
                })
                .collect();
            for i in 1..=10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 55);
        }
    }
}
