//! Quickstart: optimize an EV's velocity profile over the paper's US-25
//! corridor and print the plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use velopt::optimizer::analysis::ProfileMetrics;
use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt::Result;
use velopt_common::units::Seconds;

fn main() -> Result<()> {
    // The paper's setup: a 4.2 km section of US-25 with one stop sign
    // (490 m) and two 30s/30s traffic lights (1800 m, 3460 m); Chevrolet
    // Spark EV; 153 veh/h measured arrival rate.
    let system = VelocityOptimizationSystem::new(SystemConfig::us25())?;

    println!("Queue-free windows (T_q) per light:");
    for constraint in system.queue_windows()? {
        let windows: Vec<String> = constraint
            .windows
            .iter()
            .take(4)
            .map(|w| format!("[{:.1}s, {:.1}s)", w.start.value(), w.end.value()))
            .collect();
        println!(
            "  light @ {:>6}: {}",
            constraint.position,
            windows.join(" ")
        );
    }

    let profile = system.optimize()?;
    println!(
        "\noptimized trip: {:.1} s, {:.1} mAh, {} window violations",
        profile.trip_time.value(),
        profile.total_energy.to_milliamp_hours(),
        profile.window_violations
    );

    println!("\nstation profile (every 200 m):");
    for (i, (s, v)) in profile.stations.iter().zip(&profile.speeds).enumerate() {
        if i % 10 == 0 {
            println!(
                "  {:>7} {:>6.1} km/h  t={:>6.1}s",
                s.to_string(),
                v.to_kilometers_per_hour().value(),
                profile.times[i].value()
            );
        }
    }

    // Full metrics via the analysis module.
    let series = profile.to_time_series(Seconds::new(0.1))?;
    let metrics = ProfileMetrics::from_speed_series(
        "proposed",
        &series,
        &system.config().road,
        &system.energy_model(),
    )?;
    println!(
        "\nmetrics: {} stops, max decel {:.2} m/s^2, distance {:.0}",
        metrics.stops, metrics.max_decel, metrics.distance
    );
    Ok(())
}
