//! Drive an optimized velocity profile through the microscopic traffic
//! simulator over the TraCI protocol — the paper's Fig. 6 mechanism.
//!
//! An external controller (this program) connects to a TraCI server
//! fronting the Krauss simulator, spawns commuter-hour background traffic,
//! and commands the ego EV's speed every step from the DP profile.
//! Car-following safety still binds, so if the profile reaches a light
//! while a residual queue is discharging, the ego is *forced* to brake —
//! which is what happens to the queue-oblivious baseline and not to the
//! queue-aware plan.
//!
//! ```sh
//! cargo run --release --example traci_control
//! ```

use velopt::optimizer::dp::OptimizedProfile;
use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt::Result;
use velopt_common::units::{MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;
use velopt_traci::{TraciClient, TraciServer};

/// Departure time: 7 whole signal cycles, so the plan's `t = 0` is
/// phase-aligned with the simulation clock.
const DEPART: f64 = 420.0;

/// Outcome of replaying one plan through the simulator.
struct Drive {
    trip: f64,
    stops_at_lights: usize,
    min_speed_at_lights: f64,
}

/// Runs one profile through the simulator via TraCI.
fn drive(profile: &OptimizedProfile, label: &str) -> Result<Drive> {
    let mut sim = Simulation::new(Road::us25(), SimConfig::default())?;
    // Most of the commuter demand turns onto US-25 from the side road at
    // the first intersection approach (600 m): the corridor entrance stays
    // light (no stop-sign queue ahead of the ego), while the lights see the
    // full ~800 veh/h the plan was built for.
    sim.set_arrival_rate(VehiclesPerHour::new(120.0));
    sim.add_entry_point(
        velopt_common::units::Meters::new(600.0),
        VehiclesPerHour::new(680.0),
    )?;
    // Warm the corridor up so queues are in steady state at departure.
    sim.run_until(Seconds::new(DEPART))?;
    let ego = sim.spawn_ego(MetersPerSecond::ZERO)?;
    let ego_id = ego.to_string();

    let server = TraciServer::spawn(sim)?;
    let mut client = TraciClient::connect(server.addr())?;
    println!("[{label}] connected: {}", client.get_version()?.software);

    let light_zones = [(1650.0, 1810.0), (3310.0, 3470.0)];
    let mut stops_at_lights = 0usize;
    let mut was_stopped = true; // starts at rest (departure doesn't count)
    let mut min_speed_at_lights = f64::INFINITY;
    let mut moved = false;
    loop {
        client.simulation_step(0.0)?;
        let Ok((x, _)) = client.vehicle_position(&ego_id) else {
            break; // ego finished the corridor
        };
        let v = client.vehicle_speed(&ego_id)?;
        if v > 1.0 {
            moved = true;
            was_stopped = false;
        }
        let in_light_zone = light_zones.iter().any(|&(a, b)| x >= a && x <= b);
        if moved && in_light_zone {
            if v < 0.1 && !was_stopped {
                stops_at_lights += 1;
                was_stopped = true;
            }
            min_speed_at_lights = min_speed_at_lights.min(v);
        }
        // Replay the planned profile: command the plan's speed for the
        // ego's current *position* (drift-free tracking — the paper applies
        // the optimal velocity profile in SUMO via TraCI; safety constraints
        // still bind inside the sim). The small floor lets the ego creep
        // through the zero-speed point at the stop sign, where the sim's
        // own stop logic produces the actual halt.
        let cmd = profile
            .speed_at_position(velopt_common::units::Meters::new(x))
            .value()
            .max(0.3);
        client.set_vehicle_speed(&ego_id, cmd)?;
    }
    let trip = client.simulation_time()? - DEPART;
    client.close()?;
    server.join();
    Ok(Drive {
        trip,
        stops_at_lights,
        min_speed_at_lights,
    })
}

fn main() -> Result<()> {
    // Plan under commuter-hour arrival rates (the Fig. 6–8 regime).
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush())?;
    let ours = system.optimize()?;
    let baseline = system.optimize_baseline()?;
    println!(
        "plan arrivals at the lights — ours: {:.1}s/{:.1}s, baseline: {:.1}s/{:.1}s",
        ours.arrival_time_at(velopt_common::units::Meters::new(1800.0))
            .value(),
        ours.arrival_time_at(velopt_common::units::Meters::new(3460.0))
            .value(),
        baseline
            .arrival_time_at(velopt_common::units::Meters::new(1800.0))
            .value(),
        baseline
            .arrival_time_at(velopt_common::units::Meters::new(3460.0))
            .value(),
    );

    let a = drive(&ours, "queue-aware")?;
    let b = drive(&baseline, "baseline")?;

    println!("\n                       queue-aware    queue-oblivious [2]");
    println!(
        "derived trip (s)       {:>10.1}    {:>10.1}",
        a.trip, b.trip
    );
    println!(
        "stops at lights        {:>10}    {:>10}",
        a.stops_at_lights, b.stops_at_lights
    );
    println!(
        "min speed at lights    {:>10.2}    {:>10.2}",
        a.min_speed_at_lights, b.min_speed_at_lights
    );
    println!(
        "\nThe queue-aware profile glides through both lights; the baseline\n\
         meets the residual queue and is forced to brake (Fig. 6a vs 6b)."
    );
    Ok(())
}
