//! Closed-loop (MPC-style) control over TraCI — an extension beyond the
//! paper's open-loop replay.
//!
//! The open-loop protocol (see `traci_control`) replays a fixed plan and
//! absorbs whatever drift traffic inflicts. Here the controller watches the
//! EV's drift against the plan and **re-optimizes from the live state**
//! whenever it exceeds a threshold, so arrival times stay locked onto the
//! queue-free windows even after disturbances.
//!
//! ```sh
//! cargo run --release --example closed_loop
//! ```

use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt::optimizer::replan::{ReplanConfig, Replanner};
use velopt::Result;
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;
use velopt_traci::{TraciClient, TraciServer};

const DEPART: f64 = 420.0;

fn run(closed_loop: bool) -> Result<(f64, usize, f64)> {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush())?;
    let mut replanner = Replanner::new(system, ReplanConfig::default())?;

    let mut sim = Simulation::new(Road::us25(), SimConfig::default())?;
    sim.set_arrival_rate(VehiclesPerHour::new(120.0));
    sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(680.0))?;
    sim.run_until(Seconds::new(DEPART))?;
    let ego_id = sim.spawn_ego(MetersPerSecond::ZERO)?.to_string();

    let server = TraciServer::spawn(sim)?;
    let mut client = TraciClient::connect(server.addr())?;
    client.get_version()?;

    let mut worst_drift: f64 = 0.0;
    loop {
        client.simulation_step(0.0)?;
        let Ok((x, _)) = client.vehicle_position(&ego_id) else {
            break;
        };
        let v = client.vehicle_speed(&ego_id)?;
        let t_plan_clock = Seconds::new(client.simulation_time()? - DEPART);
        let pos = Meters::new(x);

        let cmd = if closed_loop {
            worst_drift = worst_drift.max(replanner.drift(pos, t_plan_clock).value().abs());
            replanner
                .command(pos, MetersPerSecond::new(v), t_plan_clock)?
                .value()
        } else {
            worst_drift = worst_drift.max(replanner.drift(pos, t_plan_clock).value().abs());
            replanner.plan().speed_at_position(pos).value()
        };
        client.set_vehicle_speed(&ego_id, cmd.max(0.3))?;
    }
    let trip = client.simulation_time()? - DEPART;
    client.close()?;
    server.join();
    Ok((trip, replanner.replans(), worst_drift))
}

fn main() -> Result<()> {
    let (trip_ol, _, drift_ol) = run(false)?;
    let (trip_cl, replans, drift_cl) = run(true)?;
    println!("                     open-loop    closed-loop");
    println!("derived trip (s)     {trip_ol:>9.1}    {trip_cl:>9.1}");
    println!("worst drift (s)      {drift_ol:>9.1}    {drift_cl:>9.1}");
    println!("replans              {:>9}    {replans:>9}", 0);
    println!(
        "\nClosed-loop control re-anchors the plan to the live state, keeping\n\
         the queue-free-window arrivals valid despite traffic disturbances."
    );
    Ok(())
}
