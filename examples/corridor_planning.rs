//! Plan a commute over a custom corridor with grades and uncoordinated
//! signals, using the SAE traffic predictor to pick the arrival rate.
//!
//! This exercises the full paper pipeline on a road that is *not* the US-25
//! preset: build the corridor, train the volume predictor on a synthetic
//! loop-detector feed, predict the arrival rate for the departure hour, and
//! compare the queue-aware plan with the queue-oblivious baseline [2].
//!
//! ```sh
//! cargo run --release --example corridor_planning
//! ```

use velopt::optimizer::pipeline::{ArrivalRates, SystemConfig, VelocityOptimizationSystem};
use velopt::Result;
use velopt_common::units::{KilometersPerHour, Meters, Seconds, VehiclesPerHour};
use velopt_core::dp::DpConfig;
use velopt_ev_energy::VehicleParams;
use velopt_queue::QueueParams;
use velopt_road::RoadBuilder;
use velopt_traffic::{SaePredictor, SaePredictorConfig, VolumeGenerator};

fn main() -> Result<()> {
    // A 3 km suburban arterial: a climb in the middle, three lights with
    // different cycles and offsets, and a school-zone speed cap.
    let road = RoadBuilder::new(Meters::new(3000.0))
        .default_limits(
            KilometersPerHour::new(40.0).to_meters_per_second(),
            KilometersPerHour::new(70.0).to_meters_per_second(),
        )
        .traffic_light(
            Meters::new(900.0),
            Seconds::new(35.0),
            Seconds::new(25.0),
            Seconds::new(10.0),
        )
        .traffic_light(
            Meters::new(1700.0),
            Seconds::new(30.0),
            Seconds::new(30.0),
            Seconds::ZERO,
        )
        .traffic_light(
            Meters::new(2500.0),
            Seconds::new(25.0),
            Seconds::new(35.0),
            Seconds::new(20.0),
        )
        .grade_knot(Meters::ZERO, 0.0)
        .grade_knot(Meters::new(1200.0), 3.0)
        .grade_knot(Meters::new(1800.0), -1.0)
        .grade_knot(Meters::new(3000.0), 0.0)
        .build()?;

    // Train the SAE on 8 weeks of the synthetic detector feed and predict
    // the arrival rate for a Tuesday 5 PM departure.
    println!("training SAE volume predictor...");
    let feed = VolumeGenerator::us25_station(2024).generate_weeks(9)?;
    let (train, test) = feed.split_at_week(8)?;
    let predictor = SaePredictor::train(&train, &SaePredictorConfig::default())?;
    let report = predictor.evaluate(&test)?;
    println!(
        "  holdout MRE {:.1}%  RMSE {:.1} veh/h",
        100.0 * report.overall.mre,
        report.overall.rmse
    );

    let departure_hour = 24 + 17; // Tuesday, 17:00 (global hour index)
    let history: Vec<f64> =
        test.samples()[departure_hour - predictor.lags()..departure_hour].to_vec();
    let rate = predictor.predict_next(&history, departure_hour)?;
    println!("  predicted arrival rate at departure: {:.0}", rate);

    let mut config = SystemConfig {
        road,
        vehicle: VehicleParams::spark_ev(),
        queue: QueueParams::us25_probe(),
        rates: ArrivalRates::Fixed(vec![VehiclesPerHour::ZERO; 3]),
        dp: DpConfig::default(),
    };
    config.rates = ArrivalRates::Fixed(vec![rate; 3]);
    let system = VelocityOptimizationSystem::new(config)?;

    let ours = system.optimize()?;
    let baseline = system.optimize_baseline()?;

    println!("\n                      queue-aware    queue-oblivious [2]");
    println!(
        "energy (mAh)        {:>10.1}      {:>10.1}",
        ours.total_energy.to_milliamp_hours(),
        baseline.total_energy.to_milliamp_hours()
    );
    println!(
        "trip time (s)       {:>10.1}      {:>10.1}",
        ours.trip_time.value(),
        baseline.trip_time.value()
    );
    println!(
        "window violations   {:>10}      {:>10}",
        ours.window_violations, baseline.window_violations
    );

    // The decisive check: evaluate the *baseline's* arrivals against the
    // true queue-free windows — this is where the prior method meets
    // residual queues (and, in simulation, brakes).
    let windows = system.queue_windows()?;
    let mut baseline_queue_hits = 0;
    for w in &windows {
        if !w.admits(baseline.arrival_time_at(w.position)) {
            baseline_queue_hits += 1;
        }
        assert!(w.admits(ours.arrival_time_at(w.position)));
    }
    println!("\nbaseline arrivals that meet a residual queue: {baseline_queue_hits}/3");
    println!("queue-aware arrivals that meet a residual queue: 0/3");
    Ok(())
}
