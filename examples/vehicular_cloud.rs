//! A fleet of EVs using the vehicular-cloud service (the deployment model
//! the paper's introduction cites from [6], [7]).
//!
//! Each EV uploads its trip (corridor, departure time, predicted arrival
//! rates) over TCP; the cloud runs the queue-aware DP on a worker pool and
//! answers with the profile. EVs departing in the same signal cycle with
//! the same demand get byte-identical requests, so the cloud's plan cache
//! absorbs most of the fleet's load.
//!
//! ```sh
//! cargo run --release --example vehicular_cloud
//! ```

use velopt::cloud::{CloudClient, CloudServer, TripRequest};
use velopt::Result;

fn main() -> Result<()> {
    let server = CloudServer::spawn(4)?;
    let addr = server.addr();
    println!("cloud listening on {addr} with 4 optimization workers");

    // A morning fleet: 12 EVs, departures spread over three signal cycles.
    // Departure times are on the signal clock, so cycle-aligned departures
    // (60 s apart) produce identical plans.
    let handles: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || -> Result<(usize, f64, f64)> {
                let mut client = CloudClient::connect(addr)?;
                let depart = (i % 3) as f64 * 60.0;
                let profile = client.request(&TripRequest::us25_at(depart))?;
                Ok((
                    i,
                    profile.trip_time.value(),
                    profile.total_energy.to_milliamp_hours(),
                ))
            })
        })
        .collect();

    println!("\n ev  depart  trip(s)  energy(mAh)");
    for h in handles {
        let (i, trip, energy) = h.join().expect("vehicle thread panicked")?;
        println!(
            " {i:>2}  {:>6.0}  {trip:>7.1}  {energy:>11.1}",
            (i % 3) as f64 * 60.0
        );
    }

    let mut client = CloudClient::connect(addr)?;
    let (served, hits) = client.stats()?;
    println!(
        "\ncloud served {served} requests; {hits} from the plan cache \
         ({:.0}% — only one real optimization per distinct departure cycle)",
        100.0 * hits as f64 / served as f64
    );

    // The fleet-gateway path: instead of one connection per EV, a gateway
    // aggregates the next wave into a single batch frame. The cloud plans
    // the batch concurrently and answers in request order; members whose
    // trips match earlier singles are served from the same plan cache.
    let wave: Vec<TripRequest> = (0..6)
        .map(|i| TripRequest::us25_at((i % 3) as f64 * 60.0 + 30.0))
        .collect();
    let results = client.plan_batch(&wave)?;
    println!("\ngateway batch of {} trips:", wave.len());
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(p) => {
                let m = &p.metrics;
                println!(
                    " {i:>2}  trip {:>5.1} s  energy {:>7.1} mAh  \
                     (solver: {} states, {:.0} ms relax, {} thread(s))",
                    p.trip_time.value(),
                    p.total_energy.to_milliamp_hours(),
                    m.states_expanded,
                    m.relax_seconds * 1e3,
                    m.threads_used
                );
            }
            Err(e) => println!(" {i:>2}  rejected: {e}"),
        }
    }
    let (served, hits) = client.stats()?;
    println!("cloud totals: served {served}, cache hits {hits}");
    server.shutdown();
    Ok(())
}
