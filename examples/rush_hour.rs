//! Sweep the arrival rate from free-flow to saturation and watch the
//! queue-free windows shrink — and the optimizer adapt.
//!
//! This is the scenario the paper's introduction motivates: traffic volume
//! is "highly unpredictable and dependent on different times", so the same
//! corridor needs different plans at 6 AM and 5 PM.
//!
//! ```sh
//! cargo run --release --example rush_hour
//! ```

use velopt::optimizer::pipeline::{ArrivalRates, SystemConfig, VelocityOptimizationSystem};
use velopt::Result;
use velopt_common::units::VehiclesPerHour;

fn main() -> Result<()> {
    println!("arrival  T_q/light  windows(1st light)           trip    energy  viol");
    println!("(veh/h)  (s/cycle)                               (s)     (mAh)");
    for rate in [50.0, 153.0, 400.0, 800.0, 1200.0, 2000.0] {
        let mut config = SystemConfig::us25();
        config.rates =
            ArrivalRates::Fixed(vec![VehiclesPerHour::new(rate), VehiclesPerHour::new(rate)]);
        let system = VelocityOptimizationSystem::new(config)?;
        let windows = system.queue_windows()?;

        // Average queue-free seconds per 60 s cycle at the first light.
        let total: f64 = windows[0]
            .windows
            .iter()
            .map(|w| w.duration().value())
            .sum();
        let cycles = system.config().dp.horizon.value() / 60.0;
        let per_cycle = total / cycles;

        let first: Vec<String> = windows[0]
            .windows
            .iter()
            .take(2)
            .map(|w| format!("[{:.1},{:.1})", w.start.value(), w.end.value()))
            .collect();

        match system.optimize() {
            Ok(profile) => println!(
                "{rate:>7.0}  {per_cycle:>9.1}  {:<28} {:>6.1}  {:>7.1}  {:>4}",
                first.join(" "),
                profile.trip_time.value(),
                profile.total_energy.to_milliamp_hours(),
                profile.window_violations
            ),
            Err(e) => println!("{rate:>7.0}  {per_cycle:>9.1}  {:<28} {e}", first.join(" ")),
        }
    }
    println!(
        "\nAs V_in grows the queue needs longer to discharge, the usable\n\
         green shrinks, and past saturation (capacity ≈ {:.0} veh/h) no\n\
         queue-free instant remains: window violations become unavoidable.",
        3600.0 * (40.0 / 3.6) / (8.5 * 0.7636)
    );
    Ok(())
}
