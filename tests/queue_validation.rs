//! The Fig. 5 experiment: validate the VM-aware QL model against the
//! microscopic simulator's measured queues, and show it beats the
//! instant-discharge baseline of [9].

use velopt_common::stats;
use velopt_common::units::{Meters, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_queue::{BaselineQueueModel, QueueModel, QueueParams};
use velopt_road::{Road, RoadBuilder};

/// Builds an isolated signalized approach matching the probe parameters and
/// measures the average queue trajectory over many cycles.
fn measured_queue(arrival: f64, cycles_to_avg: usize) -> Vec<f64> {
    let road = RoadBuilder::new(Meters::new(2000.0))
        .default_limits(
            velopt_common::units::KilometersPerHour::new(40.0).to_meters_per_second(),
            velopt_common::units::KilometersPerHour::new(70.0).to_meters_per_second(),
        )
        .traffic_light(
            Meters::new(1500.0),
            Seconds::new(30.0),
            Seconds::new(30.0),
            Seconds::ZERO,
        )
        .build()
        .unwrap();
    let mut sim = Simulation::new(road, SimConfig::default()).unwrap();
    sim.set_arrival_rate(VehiclesPerHour::new(arrival));
    // Warm up.
    sim.run_until(Seconds::new(300.0)).unwrap();
    // Sample the queue each second, folding cycles together (cycle = 60 s,
    // offset 0: red at [0, 30), green at [30, 60)).
    let mut folded = vec![0.0f64; 60];
    let mut counts = vec![0usize; 60];
    for c in 0..cycles_to_avg {
        for s in 0..60 {
            let t = 300.0 + (c * 60 + s) as f64;
            sim.run_until(Seconds::new(t)).unwrap();
            folded[s] += sim.queue_at_light(0) as f64;
            counts[s] += 1;
        }
    }
    folded
        .iter()
        .zip(&counts)
        .map(|(sum, n)| sum / *n as f64)
        .collect()
}

#[test]
fn fig5b_our_ql_model_tracks_simulated_queue_better_than_baseline() {
    let arrival = 700.0;
    let real = measured_queue(arrival, 12);

    let params = QueueParams {
        arrival_rate: VehiclesPerHour::new(arrival),
        straight_ratio: 1.0, // the probe road has no turners
        ..QueueParams::us25_probe()
    };
    let ours = QueueModel::new(params).unwrap();
    let baseline = BaselineQueueModel::new(params).unwrap();

    let ours_pred: Vec<f64> = (0..60)
        .map(|s| ours.queue_vehicles(Seconds::new(s as f64)))
        .collect();
    let base_pred: Vec<f64> = (0..60)
        .map(|s| baseline.queue_vehicles(Seconds::new(s as f64)))
        .collect();

    let rmse_ours = stats::rmse(&ours_pred, &real).unwrap();
    let rmse_base = stats::rmse(&base_pred, &real).unwrap();
    assert!(
        rmse_ours < rmse_base,
        "VM-aware QL model (rmse {rmse_ours:.2}) must beat the instant-\
         discharge baseline (rmse {rmse_base:.2}); real peak {:.1}",
        real.iter().cloned().fold(0.0, f64::max),
    );
    // And it must be a genuinely useful fit: error below half of the peak.
    let peak = real.iter().cloned().fold(0.0, f64::max);
    assert!(
        rmse_ours < 0.5 * peak,
        "rmse {rmse_ours:.2} vs peak {peak:.1}"
    );
}

#[test]
fn fig5a_leaving_rate_ramps_then_plateaus_at_arrival_rate() {
    let model = QueueModel::new(QueueParams::us25_probe()).unwrap();
    // Red phase: nothing leaves.
    assert_eq!(model.leaving_rate(Seconds::new(15.0)).value(), 0.0);
    // Early green: the VM ramp is below saturation.
    let early = model.leaving_rate(Seconds::new(30.5));
    let later = model.leaving_rate(Seconds::new(32.0));
    assert!(early < later);
    // After the clear instant the observable rate equals V_in — the plateau
    // both curves of Fig. 5a share.
    let clear = model.clear_time().unwrap();
    assert_eq!(
        model.leaving_rate(clear + Seconds::new(1.0)),
        VehiclesPerHour::new(153.0)
    );
    // The baseline jumps to capacity instantly (no ramp) — that is the
    // difference Fig. 5a draws.
    let baseline = BaselineQueueModel::new(QueueParams::us25_probe()).unwrap();
    let b_early = baseline.leaving_rate(Seconds::new(30.5));
    assert!(b_early.per_second() > early.per_second());
}

#[test]
fn queue_probe_matches_paper_configuration() {
    // d̄ = 8.5 m, γ = 0.7636, V_in = 153 veh/h, t_red = t_green = 30 s.
    let p = QueueParams::us25_probe();
    assert_eq!(p.spacing, Meters::new(8.5));
    assert!((p.straight_ratio - 0.7636).abs() < 1e-12);
    assert_eq!(p.arrival_rate, VehiclesPerHour::new(153.0));
    assert_eq!(p.red, Seconds::new(30.0));
    assert_eq!(p.green, Seconds::new(30.0));
    // And the US-25 road uses the same signal timing.
    for light in Road::us25().traffic_lights() {
        assert_eq!(light.red(), p.red);
        assert_eq!(light.green(), p.green);
    }
}
