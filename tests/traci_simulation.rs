//! The Fig. 6 experiment as an integration test: both DP plans replayed
//! through the microscopic simulator over the real TraCI protocol.

use velopt::optimizer::dp::OptimizedProfile;
use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt_common::units::{Meters, MetersPerSecond, Seconds, VehiclesPerHour};
use velopt_microsim::{SimConfig, Simulation};
use velopt_road::Road;
use velopt_traci::{TraciClient, TraciServer};

const DEPART: f64 = 420.0;

/// Replays a plan over TraCI; returns (trip seconds, min speed in the two
/// light areas).
fn replay(profile: &OptimizedProfile) -> (f64, f64) {
    let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
    sim.set_arrival_rate(VehiclesPerHour::new(120.0));
    sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(680.0))
        .unwrap();
    sim.run_until(Seconds::new(DEPART)).unwrap();
    let ego_id = sim.spawn_ego(MetersPerSecond::ZERO).unwrap().to_string();

    let server = TraciServer::spawn(sim).unwrap();
    let mut client = TraciClient::connect(server.addr()).unwrap();
    assert!(client.get_version().unwrap().api >= 20);

    let mut min_speed_at_lights = f64::INFINITY;
    loop {
        client.simulation_step(0.0).unwrap();
        let Ok((x, _)) = client.vehicle_position(&ego_id) else {
            break;
        };
        let v = client.vehicle_speed(&ego_id).unwrap();
        let in_zone = [(1650.0, 1810.0), (3310.0, 3470.0)]
            .iter()
            .any(|&(a, b)| x >= a && x <= b);
        if in_zone {
            min_speed_at_lights = min_speed_at_lights.min(v);
        }
        let cmd = profile.speed_at_position(Meters::new(x)).value().max(0.3);
        client.set_vehicle_speed(&ego_id, cmd).unwrap();
    }
    let trip = client.simulation_time().unwrap() - DEPART;
    client.close().unwrap();
    server.join();
    (trip, min_speed_at_lights)
}

#[test]
fn fig6_queue_aware_glides_baseline_brakes() {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
    let ours = system.optimize().unwrap();
    let baseline = system.optimize_baseline().unwrap();

    let (trip_ours, min_ours) = replay(&ours);
    let (trip_base, min_base) = replay(&baseline);

    // Fig. 6b: no stops or large decelerations in the light areas.
    assert!(
        min_ours > 6.0,
        "queue-aware profile should glide (min speed {min_ours:.2})"
    );
    // Fig. 6a: the prior DP meets the discharging queue and brakes hard.
    assert!(
        min_base < 0.5 * min_ours,
        "queue-oblivious plan should be forced to brake: {min_base:.2} vs {min_ours:.2}"
    );
    // Neither trip blows up (both finish the 4.2 km corridor).
    assert!(trip_ours > 200.0 && trip_ours < 450.0);
    assert!(trip_base > 200.0 && trip_base < 450.0);
}

#[test]
fn traci_detectors_measure_background_flow() {
    let mut sim = Simulation::new(Road::us25(), SimConfig::default()).unwrap();
    sim.add_detector(Meters::new(1000.0)).unwrap();
    sim.set_arrival_rate(VehiclesPerHour::new(120.0));
    sim.add_entry_point(Meters::new(600.0), VehiclesPerHour::new(680.0))
        .unwrap();
    let server = TraciServer::spawn(sim).unwrap();
    let mut client = TraciClient::connect(server.addr()).unwrap();
    // SUMO LAST_STEP_VEHICLE_NUMBER is a per-step figure: step tick by
    // tick and accumulate, like a real TraCI detector poller.
    let mut crossings = 0;
    for _ in 0..6000 {
        client.simulation_step(0.0).unwrap();
        crossings += client.induction_loop_count("loop0").unwrap();
    }
    // ~800 veh/h for 600 s ≈ 133 expected; allow a wide Poisson/queueing band.
    assert!(
        (60..=200).contains(&crossings),
        "detector saw {crossings} crossings"
    );
    client.close().unwrap();
    server.join();
}
