//! End-to-end integration of the full paper pipeline on the US-25 corridor
//! (the Fig. 6/7/8 relationships, checked in "shape": orderings and rough
//! factors, not absolute numbers).

use velopt::optimizer::analysis::{distance_time_curve, ProfileMetrics, TripComparison};
use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};
use velopt::optimizer::profiles::{DriverProfile, DrivingStyle};
use velopt_common::units::{Meters, Seconds};

#[test]
fn proposed_profile_glides_through_both_lights() {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
    let ours = system.optimize().unwrap();
    assert_eq!(ours.window_violations, 0);
    for light in system.config().road.traffic_lights() {
        let v = ours.speed_at_position(light.position());
        assert!(
            v.value() > 5.0,
            "must pass the light at {} at speed, got {v}",
            light.position()
        );
        let t = ours.arrival_time_at(light.position());
        assert!(
            light.phase_at(t).is_green(),
            "arrival at {t} must be during green"
        );
    }
}

#[test]
fn fig7_energy_ordering_and_savings_bands() {
    // Fig. 7b: proposed < current DP (evaluated under the same traffic
    // reality) < mild < fast, with savings of 17.5% vs fast and 8.4% vs
    // mild in the paper. Our substrate differs, so we check the ordering
    // and generous bands around the factors.
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
    let road = &system.config().road;
    let energy_model = system.energy_model();
    let dt = Seconds::new(0.2);

    let ours = system.optimize().unwrap().to_time_series(dt).unwrap();
    let mild = DriverProfile::generate(road, DrivingStyle::Mild, dt).unwrap();
    let fast = DriverProfile::generate(road, DrivingStyle::Fast, dt).unwrap();

    let m_ours = ProfileMetrics::from_speed_series("proposed", &ours, road, &energy_model).unwrap();
    let m_mild =
        ProfileMetrics::from_speed_series("mild driving", &mild.speed, road, &energy_model)
            .unwrap();
    let m_fast =
        ProfileMetrics::from_speed_series("fast driving", &fast.speed, road, &energy_model)
            .unwrap();

    let cmp = TripComparison::new(vec![m_ours.clone(), m_mild, m_fast]);
    let vs_fast = cmp.savings_vs("fast driving").unwrap();
    let vs_mild = cmp.savings_vs("mild driving").unwrap();

    assert!(
        vs_fast > 0.05 && vs_fast < 0.45,
        "savings vs fast driving should be substantial (paper: 17.5%), got {:.1}%",
        100.0 * vs_fast
    );
    assert!(
        vs_mild > 0.0 && vs_mild < vs_fast,
        "savings vs mild (paper: 8.4%) should be positive and smaller than \
         vs fast, got {:.1}% vs {:.1}%",
        100.0 * vs_mild,
        100.0 * vs_fast
    );
}

#[test]
fn fig8_trip_times_proposed_close_to_fast_and_below_mild() {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
    let road = &system.config().road;
    let ours = system.optimize().unwrap();
    let mild = DriverProfile::generate(road, DrivingStyle::Mild, Seconds::new(0.2)).unwrap();
    let fast = DriverProfile::generate(road, DrivingStyle::Fast, Seconds::new(0.2)).unwrap();

    assert!(
        ours.trip_time < mild.trip_time,
        "proposed ({}) must beat mild ({})",
        ours.trip_time,
        mild.trip_time
    );
    // §III-B-3: "our proposed method requires the same amount of time as
    // [the] fast driving pattern". Allow 20% slack for the substrate.
    let ratio = ours.trip_time.value() / fast.trip_time.value();
    assert!(
        (0.8..=1.25).contains(&ratio),
        "proposed/fast trip-time ratio {ratio:.2} out of band"
    );
}

#[test]
fn fig8_distance_time_curves_have_stop_plateaus_for_humans_only() {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
    let road = &system.config().road;
    let fast = DriverProfile::generate(road, DrivingStyle::Fast, Seconds::new(0.2)).unwrap();
    let curve = distance_time_curve(&fast.speed);
    // The fast driver waits somewhere (stop sign service / red light): the
    // distance curve must contain a zero-slope region strictly inside the
    // trip.
    let samples = curve.samples();
    let mut plateau = 0usize;
    for w in samples.windows(10) {
        let moved = w[9] - w[0];
        let inside = w[0] > 100.0 && w[9] < 4100.0;
        if inside && moved < 0.2 {
            plateau += 1;
        }
    }
    assert!(plateau > 0, "human profile should show a mid-trip plateau");

    // The proposed profile's only mid-trip zero is the mandatory stop sign.
    let ours = system
        .optimize()
        .unwrap()
        .to_time_series(Seconds::new(0.2))
        .unwrap();
    let m = ProfileMetrics::from_speed_series("p", &ours, road, &system.energy_model()).unwrap();
    assert!(m.stops <= 1, "proposed should stop only at the sign");
}

#[test]
fn queue_aware_arrivals_inside_tq_baseline_not_always() {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25_rush()).unwrap();
    let ours = system.optimize().unwrap();
    let baseline = system.optimize_baseline().unwrap();
    let windows = system.queue_windows().unwrap();
    let mut baseline_outside = 0;
    for w in &windows {
        assert!(w.admits(ours.arrival_time_at(w.position)));
        if !w.admits(baseline.arrival_time_at(w.position)) {
            baseline_outside += 1;
        }
    }
    assert!(
        baseline_outside >= 1,
        "under rush demand the queue-oblivious plan should hit >= 1 residual queue"
    );
}

#[test]
fn profiles_cover_the_corridor() {
    let system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
    let ours = system.optimize().unwrap();
    let series = ours.to_time_series(Seconds::new(0.1)).unwrap();
    let dist = series.integrate();
    assert!((dist - 4200.0).abs() < 120.0, "distance {dist}");
    assert_eq!(*ours.stations.last().unwrap(), Meters::new(4200.0));
}
