//! The paper's Fig. 4 experiment end-to-end: 13 weeks of training data, one
//! week of testing, MRE below 10% every day.

use velopt_traffic::{SaePredictor, SaePredictorConfig, VolumeGenerator};

#[test]
fn sae_beats_paper_accuracy_bar_on_13_week_training() {
    // §III-A-2: "three-month long traffic data ... to train [the] SAE model
    // and one-week long traffic data in June for performance verification".
    let feed = VolumeGenerator::us25_station(2016)
        .generate_weeks(14)
        .unwrap();
    let (train, test) = feed.split_at_week(13).unwrap();
    let predictor = SaePredictor::train(&train, &SaePredictorConfig::default()).unwrap();
    let report = predictor.evaluate(&test).unwrap();

    assert_eq!(report.per_day.len(), 7, "Mon..Sun all evaluated");
    for day in &report.per_day {
        assert!(
            day.mre < 0.10,
            "day {} MRE {:.3} breaches the paper's 10% bar",
            day.day_of_week,
            day.mre
        );
        assert!(day.rmse > 0.0);
    }
    // RMSE "relatively small compared with real traffic volume data": under
    // 10% of the peak volume.
    let peak = test.max_volume();
    assert!(
        report.overall.rmse < 0.1 * peak,
        "rmse {:.1} vs peak {peak:.1}",
        report.overall.rmse
    );
}

#[test]
fn predictor_feeds_the_planner() {
    use velopt::optimizer::pipeline::{SystemConfig, VelocityOptimizationSystem};

    let feed = VolumeGenerator::us25_station(7).generate_weeks(5).unwrap();
    let (train, test) = feed.split_at_week(4).unwrap();
    let predictor = SaePredictor::train(&train, &SaePredictorConfig::default()).unwrap();

    let mut system = VelocityOptimizationSystem::new(SystemConfig::us25()).unwrap();
    let hour = 24 + 17; // Tuesday 5 PM
    let history = &test.samples()[hour - predictor.lags()..hour];
    system.predict_rates(&predictor, history, hour).unwrap();
    // Rush-hour prediction should be well above the night floor.
    assert!(system.arrival_rates()[0].value() > 150.0);
    let profile = system.optimize().unwrap();
    assert_eq!(profile.window_violations, 0);
}
